// The "simple" aggregates of Section 5: Count, Sum, Min, Max, Average and
// Uniform Sample, each with a tree algorithm, a multi-path (synopsis
// diffusion) algorithm, and the conversion function between them.
//
// Duplicate-insensitive Count/Sum use the FM sketch bank of [5, 7]; the
// conversion function for a subtree with total c rooted at T-node X inserts
// c distinct sub-items keyed by X into the sketch, which the multi-path
// scheme "equates with the value c" (Section 5) -- valid because path
// correctness makes X the root of a unique subtree, so no other input can
// duplicate those sub-items.
#ifndef TD_AGG_AGGREGATES_H_
#define TD_AGG_AGGREGATES_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>

#include "agg/aggregate.h"
#include "sketch/fm_sketch.h"
#include "sketch/sample_synopsis.h"

namespace td {

/// Produces a sensor's reading for an epoch. Sum/Average readings are
/// non-negative integers (sensor ADC outputs), as required by the
/// duplicate-insensitive Sum sketch.
using UintReadingFn = std::function<uint64_t(NodeId, uint32_t)>;
using RealReadingFn = std::function<double(NodeId, uint32_t)>;

/// Tree partial result for counting-style aggregates. `origin` records the
/// subtree root (set by FinalizeTreePartial) so the conversion function can
/// key the synopsis insertions by a unique identity.
struct CountingPartial {
  /// No-origin sentinel (partial not yet finalized by any node).
  static constexpr NodeId kNoOrigin = 0xffffffffu;

  uint64_t value = 0;
  NodeId origin = kNoOrigin;
};

/// COUNT: how many sensors are alive/contributing.
class CountAggregate {
 public:
  using TreePartial = CountingPartial;
  using Synopsis = FmSketch;
  using Result = double;

  explicit CountAggregate(int sketch_bitmaps = FmSketch::kDefaultBitmaps,
                          uint64_t seed = 1);

  TreePartial MakeTreePartial(NodeId node, uint32_t epoch) const;
  TreePartial EmptyTreePartial() const { return TreePartial{}; }
  void MergeTree(TreePartial* into, const TreePartial& from) const;
  void FinalizeTreePartial(TreePartial* p, NodeId node) const;

  Synopsis MakeSynopsis(NodeId node, uint32_t epoch) const;
  Synopsis EmptySynopsis() const;
  void Fuse(Synopsis* into, const Synopsis& from) const;
  Synopsis Convert(const TreePartial& p) const;

  /// Reset-in-place / memoized fast paths (bit-identical to the
  /// constructing forms; see aggregate.h). Not thread-safe: one aggregate
  /// instance per thread.
  void MakeSynopsisInto(Synopsis* out, NodeId node, uint32_t epoch) const;
  void FuseConverted(Synopsis* into, const TreePartial& p) const;

  Result EvaluateTree(const TreePartial& p) const;
  Result EvaluateSynopsis(const Synopsis& s) const;
  Result EvaluateCombined(const TreePartial& p, const Synopsis& s) const;

  size_t TreeBytes(const TreePartial& p) const;
  size_t SynopsisBytes(const Synopsis& s) const;

  /// Epoch-delta identity for the SoA engine core (src/core/): the node's
  /// self partial/synopsis is a pure function of (node, this key), so an
  /// unchanged key lets the core replay the previous epoch's cached bank
  /// instead of re-hashing. Optional member; aggregates without it are
  /// recomputed every epoch.
  uint64_t SelfSynopsisKey(NodeId /*node*/, uint32_t /*epoch*/) const {
    return 0;  // a node's Count contribution never changes
  }

 private:
  int sketch_bitmaps_;
  uint64_t seed_;
  mutable FmValueMemo convert_memo_;
};

/// SUM of non-negative integer readings.
class SumAggregate {
 public:
  using TreePartial = CountingPartial;
  using Synopsis = FmSketch;
  using Result = double;

  SumAggregate(UintReadingFn reading,
               int sketch_bitmaps = FmSketch::kDefaultBitmaps,
               uint64_t seed = 2);

  TreePartial MakeTreePartial(NodeId node, uint32_t epoch) const;
  TreePartial EmptyTreePartial() const { return TreePartial{}; }
  void MergeTree(TreePartial* into, const TreePartial& from) const;
  void FinalizeTreePartial(TreePartial* p, NodeId node) const;

  Synopsis MakeSynopsis(NodeId node, uint32_t epoch) const;
  Synopsis EmptySynopsis() const;
  void Fuse(Synopsis* into, const Synopsis& from) const;
  Synopsis Convert(const TreePartial& p) const;

  /// Reset-in-place / memoized fast paths. A leaf synopsis is a pure
  /// function of (node, reading), so an unchanged reading replays its
  /// cached bitmap bank instead of re-running the binomial simulation.
  void MakeSynopsisInto(Synopsis* out, NodeId node, uint32_t epoch) const;
  void FuseConverted(Synopsis* into, const TreePartial& p) const;

  Result EvaluateTree(const TreePartial& p) const;
  Result EvaluateSynopsis(const Synopsis& s) const;
  Result EvaluateCombined(const TreePartial& p, const Synopsis& s) const;

  size_t TreeBytes(const TreePartial& p) const;
  size_t SynopsisBytes(const Synopsis& s) const;

  /// Epoch-delta identity for the SoA engine core (src/core/): the node's
  /// self partial/synopsis is a pure function of (node, this key), so an
  /// unchanged key lets the core replay the previous epoch's cached bank
  /// instead of re-hashing. Optional member; aggregates without it are
  /// recomputed every epoch.
  uint64_t SelfSynopsisKey(NodeId node, uint32_t epoch) const {
    return reading_(node, epoch);
  }

 private:
  UintReadingFn reading_;
  int sketch_bitmaps_;
  uint64_t seed_;
  mutable FmValueMemo value_memo_;    // leaf (node, reading) banks
  mutable FmValueMemo convert_memo_;  // converted (origin, subtotal) banks
};

/// MIN or MAX of real readings. Naturally duplicate-insensitive: the
/// synopsis IS the extremum, so tree and multi-path algorithms coincide and
/// conversion is the identity.
class ExtremumAggregate {
 public:
  enum class Kind { kMin, kMax };

  using TreePartial = double;
  using Synopsis = double;
  using Result = double;

  ExtremumAggregate(Kind kind, RealReadingFn reading);

  TreePartial MakeTreePartial(NodeId node, uint32_t epoch) const;
  TreePartial EmptyTreePartial() const { return Identity(); }
  void MergeTree(TreePartial* into, const TreePartial& from) const;
  void FinalizeTreePartial(TreePartial* /*p*/, NodeId /*node*/) const {}

  Synopsis MakeSynopsis(NodeId node, uint32_t epoch) const;
  Synopsis EmptySynopsis() const { return Identity(); }
  void Fuse(Synopsis* into, const Synopsis& from) const;
  Synopsis Convert(const TreePartial& p) const { return p; }

  Result EvaluateTree(const TreePartial& p) const { return p; }
  Result EvaluateSynopsis(const Synopsis& s) const { return s; }
  Result EvaluateCombined(const TreePartial& p, const Synopsis& s) const;

  size_t TreeBytes(const TreePartial&) const { return sizeof(double); }
  size_t SynopsisBytes(const Synopsis&) const { return sizeof(double); }

  /// Epoch-delta identity for the SoA engine core (src/core/): the node's
  /// self partial/synopsis is a pure function of (node, this key), so an
  /// unchanged key lets the core replay the previous epoch's cached bank
  /// instead of re-hashing. Optional member; aggregates without it are
  /// recomputed every epoch.
  uint64_t SelfSynopsisKey(NodeId node, uint32_t epoch) const {
    return std::bit_cast<uint64_t>(reading_(node, epoch));
  }

 private:
  double Identity() const {
    return kind_ == Kind::kMin ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
  }
  double Pick(double a, double b) const {
    return kind_ == Kind::kMin ? (a < b ? a : b) : (a > b ? a : b);
  }

  Kind kind_;
  RealReadingFn reading_;
};

/// AVERAGE = duplicate-insensitive Sum / duplicate-insensitive Count.
class AverageAggregate {
 public:
  struct TreePartial {
    uint64_t sum = 0;
    uint64_t count = 0;
    NodeId origin = 0xffffffffu;
  };
  struct Synopsis {
    FmSketch sum_sketch;
    FmSketch count_sketch;
  };
  using Result = double;

  AverageAggregate(UintReadingFn reading,
                   int sketch_bitmaps = FmSketch::kDefaultBitmaps,
                   uint64_t seed = 3);

  TreePartial MakeTreePartial(NodeId node, uint32_t epoch) const;
  TreePartial EmptyTreePartial() const { return TreePartial{}; }
  void MergeTree(TreePartial* into, const TreePartial& from) const;
  void FinalizeTreePartial(TreePartial* p, NodeId node) const;

  Synopsis MakeSynopsis(NodeId node, uint32_t epoch) const;
  Synopsis EmptySynopsis() const;
  void Fuse(Synopsis* into, const Synopsis& from) const;
  Synopsis Convert(const TreePartial& p) const;

  /// Reset-in-place / memoized fast paths over both component sketches.
  void MakeSynopsisInto(Synopsis* out, NodeId node, uint32_t epoch) const;
  void FuseConverted(Synopsis* into, const TreePartial& p) const;

  Result EvaluateTree(const TreePartial& p) const;
  Result EvaluateSynopsis(const Synopsis& s) const;
  Result EvaluateCombined(const TreePartial& p, const Synopsis& s) const;

  /// Sum / Count decomposition for the decayed (EWMA) window path: the
  /// average decays through its invertible components, not the ratio.
  /// Null sides contribute nothing (see agg/aggregate.h).
  void EvaluateWindowComponents(const TreePartial* p, const Synopsis* s,
                                double* num, double* den) const;

  size_t TreeBytes(const TreePartial&) const;
  size_t SynopsisBytes(const Synopsis& s) const;

  /// Epoch-delta identity for the SoA engine core (src/core/): the node's
  /// self partial/synopsis is a pure function of (node, this key), so an
  /// unchanged key lets the core replay the previous epoch's cached bank
  /// instead of re-hashing. Optional member; aggregates without it are
  /// recomputed every epoch.
  uint64_t SelfSynopsisKey(NodeId node, uint32_t epoch) const {
    return reading_(node, epoch);
  }

 private:
  UintReadingFn reading_;
  int sketch_bitmaps_;
  uint64_t seed_;
  mutable FmValueMemo sum_memo_;            // leaf (node, reading) banks
  mutable FmValueMemo sum_convert_memo_;    // converted partial sums
  mutable FmValueMemo count_convert_memo_;  // converted partial counts
};

/// UNIQUE COUNT: number of distinct reading values network-wide. An FM
/// sketch keyed by the value is duplicate-insensitive by nature, so the
/// tree and multi-path algorithms share one synopsis type and conversion is
/// the identity (like Min/Max and Uniform Sample); the tree side trades the
/// usual exactness for a bounded-size partial result.
class UniqueCountAggregate {
 public:
  using TreePartial = FmSketch;
  using Synopsis = FmSketch;
  using Result = double;

  explicit UniqueCountAggregate(UintReadingFn reading,
                                int sketch_bitmaps = FmSketch::kDefaultBitmaps,
                                uint64_t seed = 5);

  TreePartial MakeTreePartial(NodeId node, uint32_t epoch) const;
  TreePartial EmptyTreePartial() const;
  void MergeTree(TreePartial* into, const TreePartial& from) const;
  void FinalizeTreePartial(TreePartial* /*p*/, NodeId /*node*/) const {}

  Synopsis MakeSynopsis(NodeId node, uint32_t epoch) const;
  Synopsis EmptySynopsis() const;
  void Fuse(Synopsis* into, const Synopsis& from) const;
  Synopsis Convert(const TreePartial& p) const { return p; }

  /// Reset-in-place fast paths (both partial and synopsis are FM sketches).
  void MakeTreePartialInto(TreePartial* out, NodeId node, uint32_t epoch) const;
  void MakeSynopsisInto(Synopsis* out, NodeId node, uint32_t epoch) const;
  void FuseConverted(Synopsis* into, const TreePartial& p) const {
    into->Merge(p);  // Convert is the identity
  }

  Result EvaluateTree(const TreePartial& p) const { return p.Estimate(); }
  Result EvaluateSynopsis(const Synopsis& s) const { return s.Estimate(); }
  Result EvaluateCombined(const TreePartial& p, const Synopsis& s) const;

  size_t TreeBytes(const TreePartial& p) const { return p.EncodedBytes(); }
  size_t SynopsisBytes(const Synopsis& s) const { return s.EncodedBytes(); }

  /// Epoch-delta identity for the SoA engine core (src/core/): the node's
  /// self partial/synopsis is a pure function of (node, this key), so an
  /// unchanged key lets the core replay the previous epoch's cached bank
  /// instead of re-hashing. Optional member; aggregates without it are
  /// recomputed every epoch.
  uint64_t SelfSynopsisKey(NodeId node, uint32_t epoch) const {
    return reading_(node, epoch);
  }

 private:
  UintReadingFn reading_;
  int sketch_bitmaps_;
  uint64_t seed_;
};

/// UNIFORM SAMPLE of (sensor, reading) pairs; the basis for Quantiles and
/// statistical moments in the framework (Section 5). Min-wise sampling is
/// duplicate-insensitive, so tree partials and synopses share one type and
/// conversion is the identity.
class UniformSampleAggregate {
 public:
  using TreePartial = SampleSynopsis;
  using Synopsis = SampleSynopsis;
  using Result = SampleSynopsis;

  UniformSampleAggregate(RealReadingFn reading, size_t sample_size,
                         uint64_t seed = 4);

  TreePartial MakeTreePartial(NodeId node, uint32_t epoch) const;
  TreePartial EmptyTreePartial() const;
  void MergeTree(TreePartial* into, const TreePartial& from) const;
  void FinalizeTreePartial(TreePartial* /*p*/, NodeId /*node*/) const {}

  Synopsis MakeSynopsis(NodeId node, uint32_t epoch) const;
  Synopsis EmptySynopsis() const;
  void Fuse(Synopsis* into, const Synopsis& from) const;
  Synopsis Convert(const TreePartial& p) const { return p; }

  Result EvaluateTree(const TreePartial& p) const { return p; }
  Result EvaluateSynopsis(const Synopsis& s) const { return s; }
  Result EvaluateCombined(const TreePartial& p, const Synopsis& s) const;

  size_t TreeBytes(const TreePartial& p) const { return p.EncodedBytes(); }
  size_t SynopsisBytes(const Synopsis& s) const { return s.EncodedBytes(); }

  size_t sample_size() const { return sample_size_; }

  /// Epoch-delta identity for the SoA engine core (src/core/): the node's
  /// self partial/synopsis is a pure function of (node, this key), so an
  /// unchanged key lets the core replay the previous epoch's cached bank
  /// instead of re-hashing. Optional member; aggregates without it are
  /// recomputed every epoch.
  uint64_t SelfSynopsisKey(NodeId node, uint32_t epoch) const {
    return std::bit_cast<uint64_t>(reading_(node, epoch));
  }

 private:
  RealReadingFn reading_;
  size_t sample_size_;
  uint64_t seed_;
};

/// Sample capacity QUANTILE uses when the caller does not pick one. 64
/// bounds the payload at ~1KB while keeping the nearest-rank estimate
/// within a few percentile ranks for the paper's network sizes.
inline constexpr size_t kDefaultQuantileSampleSize = 64;

/// QUANTILE (median by default): the p-quantile of real readings, computed
/// over the Section 5 uniform-sample synopsis. Tree partials and synopses
/// are both SampleSynopsis (min-wise sampling is duplicate-insensitive, so
/// conversion is the identity); evaluation takes the nearest-rank
/// p-quantile of the surviving sample. An empty sample evaluates to 0.
class QuantileAggregate {
 public:
  using TreePartial = SampleSynopsis;
  using Synopsis = SampleSynopsis;
  using Result = double;

  QuantileAggregate(RealReadingFn reading, double p,
                    size_t sample_size = kDefaultQuantileSampleSize,
                    uint64_t seed = 4);

  TreePartial MakeTreePartial(NodeId node, uint32_t epoch) const {
    return inner_.MakeTreePartial(node, epoch);
  }
  TreePartial EmptyTreePartial() const { return inner_.EmptyTreePartial(); }
  void MergeTree(TreePartial* into, const TreePartial& from) const {
    inner_.MergeTree(into, from);
  }
  void FinalizeTreePartial(TreePartial* /*p*/, NodeId /*node*/) const {}

  Synopsis MakeSynopsis(NodeId node, uint32_t epoch) const {
    return inner_.MakeSynopsis(node, epoch);
  }
  Synopsis EmptySynopsis() const { return inner_.EmptySynopsis(); }
  void Fuse(Synopsis* into, const Synopsis& from) const {
    inner_.Fuse(into, from);
  }
  Synopsis Convert(const TreePartial& p) const { return p; }

  Result EvaluateTree(const TreePartial& p) const { return FromSample(p); }
  Result EvaluateSynopsis(const Synopsis& s) const { return FromSample(s); }
  Result EvaluateCombined(const TreePartial& p, const Synopsis& s) const;

  size_t TreeBytes(const TreePartial& p) const { return p.EncodedBytes(); }
  size_t SynopsisBytes(const Synopsis& s) const { return s.EncodedBytes(); }

  double quantile_p() const { return p_; }
  size_t sample_size() const { return inner_.sample_size(); }

  /// Epoch-delta identity for the SoA engine core (src/core/): the node's
  /// self partial/synopsis is a pure function of (node, this key), so an
  /// unchanged key lets the core replay the previous epoch's cached bank
  /// instead of re-hashing. Optional member; aggregates without it are
  /// recomputed every epoch.
  uint64_t SelfSynopsisKey(NodeId node, uint32_t epoch) const {
    return inner_.SelfSynopsisKey(node, epoch);
  }

 private:
  double FromSample(const SampleSynopsis& s) const;

  UniformSampleAggregate inner_;
  double p_;
};

}  // namespace td

#endif  // TD_AGG_AGGREGATES_H_
