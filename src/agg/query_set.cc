#include "agg/query_set.h"

namespace td {

QuerySetAggregate::QuerySetAggregate(
    std::vector<std::unique_ptr<QueryOps>> queries, size_t primary)
    : queries_(std::move(queries)), primary_(primary) {
  TD_CHECK_GT(queries_.size(), 0u);
  TD_CHECK_LT(primary_, queries_.size());
  for (const auto& q : queries_) TD_CHECK(q != nullptr);
}

QuerySetAggregate::TreePartial QuerySetAggregate::MakeTreePartial(
    NodeId node, uint32_t epoch) const {
  TreePartial p = EmptyTreePartial();
  MakeTreePartialInto(&p, node, epoch);
  return p;
}

QuerySetAggregate::TreePartial QuerySetAggregate::EmptyTreePartial() const {
  TreePartial p;
  p.q.reserve(queries_.size());
  for (const auto& ops : queries_) p.q.emplace_back(ops.get());
  return p;
}

void QuerySetAggregate::MergeTree(TreePartial* into,
                                  const TreePartial& from) const {
  TD_DCHECK(into->q.size() == queries_.size());
  TD_DCHECK(from.q.size() == queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    queries_[i]->MergeTree(into->q[i].get(), from.q[i].get());
  }
}

void QuerySetAggregate::FinalizeTreePartial(TreePartial* p,
                                            NodeId node) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    queries_[i]->FinalizeTreePartial(p->q[i].get(), node);
  }
}

QuerySetAggregate::Synopsis QuerySetAggregate::MakeSynopsis(
    NodeId node, uint32_t epoch) const {
  Synopsis s = EmptySynopsis();
  MakeSynopsisInto(&s, node, epoch);
  return s;
}

QuerySetAggregate::Synopsis QuerySetAggregate::EmptySynopsis() const {
  Synopsis s;
  s.q.reserve(queries_.size());
  for (const auto& ops : queries_) s.q.emplace_back(ops.get());
  return s;
}

void QuerySetAggregate::Fuse(Synopsis* into, const Synopsis& from) const {
  TD_DCHECK(into->q.size() == queries_.size());
  TD_DCHECK(from.q.size() == queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    queries_[i]->Fuse(into->q[i].get(), from.q[i].get());
  }
}

QuerySetAggregate::Synopsis QuerySetAggregate::Convert(
    const TreePartial& p) const {
  Synopsis s;
  s.q.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    s.q.emplace_back(queries_[i].get(),
                     queries_[i]->ConvertTreePartial(p.q[i].get()));
  }
  return s;
}

void QuerySetAggregate::MakeTreePartialInto(TreePartial* out, NodeId node,
                                            uint32_t epoch) const {
  TD_DCHECK(out->q.size() == queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    queries_[i]->MakeTreePartialInto(out->q[i].get(), node, epoch);
  }
}

void QuerySetAggregate::MakeSynopsisInto(Synopsis* out, NodeId node,
                                         uint32_t epoch) const {
  TD_DCHECK(out->q.size() == queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    queries_[i]->MakeSynopsisInto(out->q[i].get(), node, epoch);
  }
}

void QuerySetAggregate::FuseConverted(Synopsis* into,
                                      const TreePartial& p) const {
  TD_DCHECK(into->q.size() == queries_.size());
  TD_DCHECK(p.q.size() == queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    queries_[i]->FuseConverted(into->q[i].get(), p.q[i].get());
  }
}

QuerySetAggregate::Result QuerySetAggregate::EvaluateTree(
    const TreePartial& p) const {
  Result r;
  r.primary = primary_;
  r.values.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    r.values.push_back(queries_[i]->EvaluateTree(p.q[i].get()));
  }
  return r;
}

QuerySetAggregate::Result QuerySetAggregate::EvaluateSynopsis(
    const Synopsis& s) const {
  Result r;
  r.primary = primary_;
  r.values.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    r.values.push_back(queries_[i]->EvaluateSynopsis(s.q[i].get()));
  }
  return r;
}

QuerySetAggregate::Result QuerySetAggregate::EvaluateCombined(
    const TreePartial& p, const Synopsis& s) const {
  Result r;
  r.primary = primary_;
  r.values.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    r.values.push_back(
        queries_[i]->EvaluateCombined(p.q[i].get(), s.q[i].get()));
  }
  return r;
}

size_t QuerySetAggregate::TreeBytes(const TreePartial& p) const {
  size_t bytes = 0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    bytes += queries_[i]->TreeBytes(p.q[i].get());
  }
  return bytes;
}

size_t QuerySetAggregate::SynopsisBytes(const Synopsis& s) const {
  size_t bytes = 0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    bytes += queries_[i]->SynopsisBytes(s.q[i].get());
  }
  return bytes;
}

}  // namespace td
