// Result of running one aggregation epoch, shared by all engines.
#ifndef TD_AGG_EPOCH_OUTCOME_H_
#define TD_AGG_EPOCH_OUTCOME_H_

#include <cstddef>

#include "util/node_set.h"

namespace td {

/// Bookkeeping for the engines' reusable per-epoch inbox scratch: `builds`
/// counts full (re)allocations of the size-n inbox arrays, `reuses` counts
/// epochs served from the existing buffers. A batch run over one engine
/// must show builds == 1 regardless of epoch count.
struct ScratchStats {
  size_t builds = 0;
  size_t reuses = 0;
};

template <typename Result>
struct EpochOutcome {
  Result result{};

  /// Ground truth: exact set of sensors whose readings are accounted for in
  /// `result` (simulator metadata; the base station cannot observe this).
  NodeSet contributors;

  /// Ground truth count (== contributors.Count(), cached).
  size_t true_contributing = 0;

  /// What the base station *believes* contributed, from the piggybacked
  /// counts: exact for tree regions, an FM estimate for delta regions. This
  /// is the signal that drives Tributary-Delta adaptation (Section 4.2).
  double reported_contributing = 0.0;
};

}  // namespace td

#endif  // TD_AGG_EPOCH_OUTCOME_H_
