// TAG-style tree aggregation engine [10] (Section 2, "Tree-Based").
//
// In-network aggregation proceeds level-by-level from the leaves: each node
// merges its children's partial results into its own reading, finalizes
// (aggregates with per-node behavior hook in here), and unicasts the
// partial to its parent. A lost message drops the entire subtree from the
// answer -- the severe robustness problem Tributary-Delta exists to fix.
#ifndef TD_AGG_TREE_AGGREGATOR_H_
#define TD_AGG_TREE_AGGREGATOR_H_

#include <optional>
#include <vector>

#include "agg/aggregate.h"
#include "agg/epoch_outcome.h"
#include "net/network.h"
#include "obs/telemetry.h"
#include "topology/tree.h"
#include "util/check.h"
#include "util/node_set.h"

namespace td {

template <Aggregate A>
class TreeAggregator {
 public:
  struct Options {
    /// Extra transmission attempts after a loss (Figure 9(b) lets tree
    /// nodes retransmit twice: extra_retransmissions = 2).
    int extra_retransmissions = 0;
  };

  TreeAggregator(const Tree* tree, Network* network, const A* aggregate,
                 Options options = {})
      : tree_(tree),
        network_(network),
        aggregate_(aggregate),
        options_(options) {
    TD_CHECK(tree != nullptr);
    TD_CHECK(network != nullptr);
    TD_CHECK(aggregate != nullptr);
    TD_CHECK_EQ(tree->num_nodes(), network->size());
  }

  using Outcome = EpochOutcome<typename A::Result>;

  /// Runs one aggregation epoch; deterministic given the network seed and
  /// call sequence.
  Outcome RunEpoch(uint32_t epoch) {
    TD_PROFILE_SCOPE(obs::Phase::kSweep);
    const NodeId root = tree_->root();

    PrepareScratch();
    std::vector<typename A::TreePartial>& inbox = scratch_.inbox;
    std::vector<uint64_t>& inbox_count = scratch_.inbox_count;
    std::vector<NodeSet>& inbox_set = scratch_.inbox_set;

    for (NodeId v : tree_->TopologicalChildrenFirst()) {
      if (v == root) continue;
      // Local reading merged with whatever arrived from children. The
      // partial and covered-set scratch members are recycled across nodes
      // and epochs (reset in place, never re-heap-allocated).
      typename A::TreePartial& partial = *scratch_partial_;
      td::MakeTreePartialInto(*aggregate_, &partial, v, epoch);
      aggregate_->MergeTree(&partial, inbox[v]);
      aggregate_->FinalizeTreePartial(&partial, v);

      uint64_t contributing = 1 + inbox_count[v];
      scratch_covered_ = inbox_set[v];
      scratch_covered_.Set(v);

      NodeId parent = tree_->parent(v);
      size_t bytes = aggregate_->TreeBytes(partial) + kMessageHeaderBytes;
      bool delivered = network_->DeliverWithRetries(
          v, parent, epoch, options_.extra_retransmissions, bytes);
      if (delivered) {
        aggregate_->MergeTree(&inbox[parent], partial);
        inbox_count[parent] += contributing;
        inbox_set[parent].Union(scratch_covered_);
      }
    }

    // The base station merges surviving inputs and evaluates. It holds no
    // reading of its own.
    typename A::TreePartial final_partial = aggregate_->EmptyTreePartial();
    aggregate_->MergeTree(&final_partial, inbox[root]);
    aggregate_->FinalizeTreePartial(&final_partial, root);

    Outcome out;
    out.result = aggregate_->EvaluateTree(final_partial);
    out.contributors = inbox_set[root];
    out.true_contributing = out.contributors.Count();
    out.reported_contributing = static_cast<double>(inbox_count[root]);
    if (capture_root_) {
      // Base-station bookkeeping for windowed aggregation (window/): the
      // root partial is kept, never retransmitted, so this adds zero radio
      // bytes and leaves the epoch's deliveries untouched.
      root_partial_ = std::move(final_partial);
    }
    return out;
  }

  /// Keeps each epoch's root partial for window consumers (off by default;
  /// the copy is pure base-station work).
  void EnableRootCapture() { capture_root_ = true; }

  /// The last RunEpoch's root partial, or nullptr before the first
  /// captured epoch. Valid until the next RunEpoch.
  const typename A::TreePartial* root_partial() const {
    return root_partial_ ? &*root_partial_ : nullptr;
  }

  const Tree& tree() const { return *tree_; }
  const ScratchStats& scratch_stats() const { return scratch_stats_; }

 private:
  /// Per-epoch inbox state, hoisted into a reusable member so batch runs
  /// never re-allocate the size-n arrays (or their elements' buffers:
  /// assign() into same-sized elements reuses their heap storage).
  struct Scratch {
    std::vector<typename A::TreePartial> inbox;
    std::vector<uint64_t> inbox_count;
    std::vector<NodeSet> inbox_set;
  };

  void PrepareScratch() {
    const size_t n = tree_->num_nodes();
    if (scratch_.inbox_count.size() == n) {
      ++scratch_stats_.reuses;
    } else {
      ++scratch_stats_.builds;
      empty_partial_.emplace(aggregate_->EmptyTreePartial());
      scratch_partial_.emplace(aggregate_->EmptyTreePartial());
      empty_set_ = NodeSet(n);
      scratch_covered_ = NodeSet(n);
    }
    scratch_.inbox.assign(n, *empty_partial_);
    scratch_.inbox_count.assign(n, 0);
    scratch_.inbox_set.assign(n, empty_set_);
  }

  const Tree* tree_;
  Network* network_;
  const A* aggregate_;
  Options options_;
  Scratch scratch_;
  ScratchStats scratch_stats_;
  std::optional<typename A::TreePartial> empty_partial_;
  std::optional<typename A::TreePartial> scratch_partial_;  // per-node reuse
  NodeSet empty_set_;
  NodeSet scratch_covered_;  // per-node covered-set reuse
  bool capture_root_ = false;
  std::optional<typename A::TreePartial> root_partial_;
};

}  // namespace td

#endif  // TD_AGG_TREE_AGGREGATOR_H_
