// The Aggregate concept: what an aggregate must provide to be computed in
// the Tributary-Delta framework (Section 5 of the paper).
//
// An aggregate supplies three things:
//   1. a *tree algorithm*  -- partial results combined up an aggregation
//      tree (MakeTreePartial / MergeTree / FinalizeTreePartial);
//   2. a *multi-path algorithm* in the synopsis-diffusion SG/SF/SE form
//      (MakeSynopsis / Fuse / EvaluateSynopsis);
//   3. a *conversion function* (Convert) that turns a tree partial result
//      into a synopsis the multi-path scheme equates with the same inputs,
//      so a multi-path node can consume tributary outputs obliviously.
//
// Engines (TreeAggregator, MultipathAggregator, TributaryDeltaAggregator)
// are templated over this concept.
#ifndef TD_AGG_AGGREGATE_H_
#define TD_AGG_AGGREGATE_H_

#include <concepts>
#include <cstdint>
#include <cstddef>

#include "net/deployment.h"

namespace td {

/// Requirements on an aggregate type usable with the aggregation engines.
///
/// Semantics the engines rely on:
///  * MergeTree must be exact over disjoint input sets (tree inputs never
///    overlap thanks to the tree structure).
///  * Fuse must be order-insensitive AND duplicate-insensitive: fusing the
///    same synopsis twice must give the same result as fusing it once.
///  * Convert(p) must be a synopsis that EvaluateSynopsis maps to (an
///    approximation of) EvaluateTree(p), valid to fuse with any synopsis
///    whose underlying inputs are disjoint from p's.
///  * FinalizeTreePartial(p, node) is called once per node after all child
///    partials are merged and before the partial is transmitted (or
///    evaluated, at the root). Aggregates with per-node behavior (e.g. the
///    frequent-items precision gradient, which prunes by node height) hook
///    in here; simple aggregates make it a no-op.
template <typename A>
concept Aggregate = requires(const A a, typename A::TreePartial p,
                             typename A::Synopsis s, NodeId node,
                             uint32_t epoch) {
  typename A::TreePartial;
  typename A::Synopsis;
  typename A::Result;
  { a.MakeTreePartial(node, epoch) } -> std::same_as<typename A::TreePartial>;
  { a.EmptyTreePartial() } -> std::same_as<typename A::TreePartial>;
  { a.MergeTree(&p, p) };
  { a.FinalizeTreePartial(&p, node) };
  { a.MakeSynopsis(node, epoch) } -> std::same_as<typename A::Synopsis>;
  { a.EmptySynopsis() } -> std::same_as<typename A::Synopsis>;
  { a.Fuse(&s, s) };
  { a.Convert(p) } -> std::same_as<typename A::Synopsis>;
  { a.EvaluateTree(p) } -> std::same_as<typename A::Result>;
  { a.EvaluateSynopsis(s) } -> std::same_as<typename A::Result>;
  { a.EvaluateCombined(p, s) } -> std::same_as<typename A::Result>;
  { a.TreeBytes(p) } -> std::convertible_to<size_t>;
  { a.SynopsisBytes(s) } -> std::convertible_to<size_t>;
};

/// Per-message fixed overhead charged by the engines (sender id, epoch,
/// piggybacked contributing count).
inline constexpr size_t kMessageHeaderBytes = 8;

// ---------------------------------------------------------------------------
// Reset-in-place dispatch. Aggregates may optionally provide *Into /
// FuseConverted members that write into caller-owned storage instead of
// returning freshly constructed (heap-allocating) values; the engines call
// through these helpers, which fall back to the constructing form when an
// aggregate doesn't opt in. Results are bit-identical either way -- only
// the allocation behavior differs.

/// scratch := the synopsis MakeSynopsis(node, epoch) would return. `out`
/// must hold a synopsis of the aggregate's geometry (e.g. from
/// EmptySynopsis()) so the in-place form can recycle its buffers.
template <Aggregate A>
inline void MakeSynopsisInto(const A& a, typename A::Synopsis* out,
                             NodeId node, uint32_t epoch) {
  if constexpr (requires { a.MakeSynopsisInto(out, node, epoch); }) {
    a.MakeSynopsisInto(out, node, epoch);
  } else {
    *out = a.MakeSynopsis(node, epoch);
  }
}

/// scratch := the partial MakeTreePartial(node, epoch) would return.
template <Aggregate A>
inline void MakeTreePartialInto(const A& a, typename A::TreePartial* out,
                                NodeId node, uint32_t epoch) {
  if constexpr (requires { a.MakeTreePartialInto(out, node, epoch); }) {
    a.MakeTreePartialInto(out, node, epoch);
  } else {
    *out = a.MakeTreePartial(node, epoch);
  }
}

/// Fuse(into, Convert(p)) without materializing the converted synopsis.
template <Aggregate A>
inline void FuseConverted(const A& a, typename A::Synopsis* into,
                          const typename A::TreePartial& p) {
  if constexpr (requires { a.FuseConverted(into, p); }) {
    a.FuseConverted(into, p);
  } else {
    a.Fuse(into, a.Convert(p));
  }
}

/// Numerator/denominator decomposition of a root state's scalar answer, for
/// the exponentially-decayed window path (window/): the decayed value is
/// EWMA(num) / EWMA(den), which for ratio aggregates (Average) decays the
/// invertible Sum and Count components separately instead of smearing the
/// ratio. The default is the answer itself over a denominator of 1 (so the
/// decayed value is a plain EWMA of per-epoch answers); aggregates with a
/// genuine ratio structure provide an EvaluateWindowComponents member.
/// Either side pointer may be null when the engine strategy does not
/// surface it (tree engines have no root synopsis, multi-path engines no
/// root partial).
template <Aggregate A>
  requires std::convertible_to<typename A::Result, double>
inline void EvaluateWindowComponents(const A& a,
                                     const typename A::TreePartial* p,
                                     const typename A::Synopsis* s,
                                     double* num, double* den) {
  if constexpr (requires { a.EvaluateWindowComponents(p, s, num, den); }) {
    a.EvaluateWindowComponents(p, s, num, den);
  } else {
    *den = 1.0;
    if (p != nullptr && s != nullptr) {
      *num = static_cast<double>(a.EvaluateCombined(*p, *s));
    } else if (p != nullptr) {
      *num = static_cast<double>(a.EvaluateTree(*p));
    } else if (s != nullptr) {
      *num = static_cast<double>(a.EvaluateSynopsis(*s));
    } else {
      *num = 0.0;
    }
  }
}

}  // namespace td

#endif  // TD_AGG_AGGREGATE_H_
