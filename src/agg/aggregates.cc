#include "agg/aggregates.h"

#include "util/check.h"

namespace td {

// ---------------------------------------------------------------- Count --

CountAggregate::CountAggregate(int sketch_bitmaps, uint64_t seed)
    : sketch_bitmaps_(sketch_bitmaps),
      seed_(seed),
      convert_memo_(sketch_bitmaps, seed) {}

CountAggregate::TreePartial CountAggregate::MakeTreePartial(
    NodeId node, uint32_t /*epoch*/) const {
  return TreePartial{1, node};
}

void CountAggregate::MergeTree(TreePartial* into,
                               const TreePartial& from) const {
  into->value += from.value;
}

void CountAggregate::FinalizeTreePartial(TreePartial* p, NodeId node) const {
  p->origin = node;
}

CountAggregate::Synopsis CountAggregate::MakeSynopsis(
    NodeId node, uint32_t /*epoch*/) const {
  FmSketch s(sketch_bitmaps_, seed_);
  s.AddKey(node);
  return s;
}

CountAggregate::Synopsis CountAggregate::EmptySynopsis() const {
  return FmSketch(sketch_bitmaps_, seed_);
}

void CountAggregate::Fuse(Synopsis* into, const Synopsis& from) const {
  into->Merge(from);
}

CountAggregate::Synopsis CountAggregate::Convert(const TreePartial& p) const {
  // The subtree rooted at p.origin is unique (path correctness), so keying
  // the c simulated insertions by the origin id cannot collide with any
  // other converted subtree or with per-node AddKey insertions.
  TD_CHECK_NE(p.origin, CountingPartial::kNoOrigin);
  FmSketch s(sketch_bitmaps_, seed_);
  s.AddValue(p.origin, p.value);
  return s;
}

void CountAggregate::MakeSynopsisInto(Synopsis* out, NodeId node,
                                      uint32_t /*epoch*/) const {
  out->Clear();
  out->AddKey(node);
}

void CountAggregate::FuseConverted(Synopsis* into, const TreePartial& p) const {
  TD_CHECK_NE(p.origin, CountingPartial::kNoOrigin);
  convert_memo_.AddValue(into, p.origin, p.value);
}

CountAggregate::Result CountAggregate::EvaluateTree(
    const TreePartial& p) const {
  return static_cast<double>(p.value);
}

CountAggregate::Result CountAggregate::EvaluateSynopsis(
    const Synopsis& s) const {
  return s.Estimate();
}

CountAggregate::Result CountAggregate::EvaluateCombined(
    const TreePartial& p, const Synopsis& s) const {
  // Tree inputs that reached the base station directly stay exact; only the
  // delta region's portion carries sketch approximation error.
  return static_cast<double>(p.value) + s.Estimate();
}

size_t CountAggregate::TreeBytes(const TreePartial& /*p*/) const {
  return sizeof(uint32_t);
}

size_t CountAggregate::SynopsisBytes(const Synopsis& s) const {
  return s.EncodedBytes();
}

// ------------------------------------------------------------------ Sum --

SumAggregate::SumAggregate(UintReadingFn reading, int sketch_bitmaps,
                           uint64_t seed)
    : reading_(std::move(reading)),
      sketch_bitmaps_(sketch_bitmaps),
      seed_(seed),
      value_memo_(sketch_bitmaps, seed),
      convert_memo_(sketch_bitmaps, seed) {
  TD_CHECK(reading_ != nullptr);
}

SumAggregate::TreePartial SumAggregate::MakeTreePartial(
    NodeId node, uint32_t epoch) const {
  return TreePartial{reading_(node, epoch), node};
}

void SumAggregate::MergeTree(TreePartial* into, const TreePartial& from) const {
  into->value += from.value;
}

void SumAggregate::FinalizeTreePartial(TreePartial* p, NodeId node) const {
  p->origin = node;
}

SumAggregate::Synopsis SumAggregate::MakeSynopsis(NodeId node,
                                                  uint32_t epoch) const {
  FmSketch s(sketch_bitmaps_, seed_);
  s.AddValue(node, reading_(node, epoch));
  return s;
}

SumAggregate::Synopsis SumAggregate::EmptySynopsis() const {
  return FmSketch(sketch_bitmaps_, seed_);
}

void SumAggregate::Fuse(Synopsis* into, const Synopsis& from) const {
  into->Merge(from);
}

SumAggregate::Synopsis SumAggregate::Convert(const TreePartial& p) const {
  TD_CHECK_NE(p.origin, CountingPartial::kNoOrigin);
  FmSketch s(sketch_bitmaps_, seed_);
  s.AddValue(p.origin, p.value);
  return s;
}

void SumAggregate::MakeSynopsisInto(Synopsis* out, NodeId node,
                                    uint32_t epoch) const {
  out->Clear();
  value_memo_.AddValue(out, node, reading_(node, epoch));
}

void SumAggregate::FuseConverted(Synopsis* into, const TreePartial& p) const {
  TD_CHECK_NE(p.origin, CountingPartial::kNoOrigin);
  convert_memo_.AddValue(into, p.origin, p.value);
}

SumAggregate::Result SumAggregate::EvaluateTree(const TreePartial& p) const {
  return static_cast<double>(p.value);
}

SumAggregate::Result SumAggregate::EvaluateSynopsis(const Synopsis& s) const {
  return s.Estimate();
}

SumAggregate::Result SumAggregate::EvaluateCombined(const TreePartial& p,
                                                    const Synopsis& s) const {
  return static_cast<double>(p.value) + s.Estimate();
}

size_t SumAggregate::TreeBytes(const TreePartial& /*p*/) const {
  return sizeof(uint32_t);
}

size_t SumAggregate::SynopsisBytes(const Synopsis& s) const {
  return s.EncodedBytes();
}

// ------------------------------------------------------------- Extremum --

ExtremumAggregate::ExtremumAggregate(Kind kind, RealReadingFn reading)
    : kind_(kind), reading_(std::move(reading)) {
  TD_CHECK(reading_ != nullptr);
}

ExtremumAggregate::TreePartial ExtremumAggregate::MakeTreePartial(
    NodeId node, uint32_t epoch) const {
  return reading_(node, epoch);
}

void ExtremumAggregate::MergeTree(TreePartial* into,
                                  const TreePartial& from) const {
  *into = Pick(*into, from);
}

ExtremumAggregate::Synopsis ExtremumAggregate::MakeSynopsis(
    NodeId node, uint32_t epoch) const {
  return reading_(node, epoch);
}

void ExtremumAggregate::Fuse(Synopsis* into, const Synopsis& from) const {
  *into = Pick(*into, from);
}

ExtremumAggregate::Result ExtremumAggregate::EvaluateCombined(
    const TreePartial& p, const Synopsis& s) const {
  return Pick(p, s);
}

// -------------------------------------------------------------- Average --

AverageAggregate::AverageAggregate(UintReadingFn reading, int sketch_bitmaps,
                                   uint64_t seed)
    : reading_(std::move(reading)),
      sketch_bitmaps_(sketch_bitmaps),
      seed_(seed),
      sum_memo_(sketch_bitmaps, seed),
      sum_convert_memo_(sketch_bitmaps, seed),
      count_convert_memo_(sketch_bitmaps, seed ^ 0x5bd1e995u) {
  TD_CHECK(reading_ != nullptr);
}

AverageAggregate::TreePartial AverageAggregate::MakeTreePartial(
    NodeId node, uint32_t epoch) const {
  return TreePartial{reading_(node, epoch), 1, node};
}

void AverageAggregate::MergeTree(TreePartial* into,
                                 const TreePartial& from) const {
  into->sum += from.sum;
  into->count += from.count;
}

void AverageAggregate::FinalizeTreePartial(TreePartial* p, NodeId node) const {
  p->origin = node;
}

AverageAggregate::Synopsis AverageAggregate::MakeSynopsis(
    NodeId node, uint32_t epoch) const {
  Synopsis s = EmptySynopsis();
  s.sum_sketch.AddValue(node, reading_(node, epoch));
  s.count_sketch.AddKey(node);
  return s;
}

AverageAggregate::Synopsis AverageAggregate::EmptySynopsis() const {
  return Synopsis{FmSketch(sketch_bitmaps_, seed_),
                  FmSketch(sketch_bitmaps_, seed_ ^ 0x5bd1e995u)};
}

void AverageAggregate::Fuse(Synopsis* into, const Synopsis& from) const {
  into->sum_sketch.Merge(from.sum_sketch);
  into->count_sketch.Merge(from.count_sketch);
}

AverageAggregate::Synopsis AverageAggregate::Convert(
    const TreePartial& p) const {
  TD_CHECK_NE(p.origin, 0xffffffffu);
  Synopsis s = EmptySynopsis();
  s.sum_sketch.AddValue(p.origin, p.sum);
  s.count_sketch.AddValue(p.origin, p.count);
  return s;
}

void AverageAggregate::MakeSynopsisInto(Synopsis* out, NodeId node,
                                        uint32_t epoch) const {
  out->sum_sketch.Clear();
  out->count_sketch.Clear();
  sum_memo_.AddValue(&out->sum_sketch, node, reading_(node, epoch));
  out->count_sketch.AddKey(node);
}

void AverageAggregate::FuseConverted(Synopsis* into,
                                     const TreePartial& p) const {
  TD_CHECK_NE(p.origin, 0xffffffffu);
  sum_convert_memo_.AddValue(&into->sum_sketch, p.origin, p.sum);
  count_convert_memo_.AddValue(&into->count_sketch, p.origin, p.count);
}

AverageAggregate::Result AverageAggregate::EvaluateTree(
    const TreePartial& p) const {
  if (p.count == 0) return 0.0;
  return static_cast<double>(p.sum) / static_cast<double>(p.count);
}

AverageAggregate::Result AverageAggregate::EvaluateSynopsis(
    const Synopsis& s) const {
  double c = s.count_sketch.Estimate();
  if (c <= 0.0) return 0.0;
  return s.sum_sketch.Estimate() / c;
}

AverageAggregate::Result AverageAggregate::EvaluateCombined(
    const TreePartial& p, const Synopsis& s) const {
  double sum = static_cast<double>(p.sum) + s.sum_sketch.Estimate();
  double count = static_cast<double>(p.count) + s.count_sketch.Estimate();
  if (count <= 0.0) return 0.0;
  return sum / count;
}

void AverageAggregate::EvaluateWindowComponents(const TreePartial* p,
                                                const Synopsis* s,
                                                double* num,
                                                double* den) const {
  *num = 0.0;
  *den = 0.0;
  if (p != nullptr) {
    *num += static_cast<double>(p->sum);
    *den += static_cast<double>(p->count);
  }
  if (s != nullptr) {
    *num += s->sum_sketch.Estimate();
    *den += s->count_sketch.Estimate();
  }
}

size_t AverageAggregate::TreeBytes(const TreePartial&) const {
  return 2 * sizeof(uint32_t);
}

size_t AverageAggregate::SynopsisBytes(const Synopsis& s) const {
  return s.sum_sketch.EncodedBytes() + s.count_sketch.EncodedBytes();
}

// --------------------------------------------------------- Unique count --

UniqueCountAggregate::UniqueCountAggregate(UintReadingFn reading,
                                           int sketch_bitmaps, uint64_t seed)
    : reading_(std::move(reading)),
      sketch_bitmaps_(sketch_bitmaps),
      seed_(seed) {}

UniqueCountAggregate::TreePartial UniqueCountAggregate::MakeTreePartial(
    NodeId node, uint32_t epoch) const {
  FmSketch s(sketch_bitmaps_, seed_);
  // Keyed by the value: two sensors observing the same reading insert the
  // same item, which is exactly what makes the count "unique".
  s.AddKey(reading_(node, epoch));
  return s;
}

UniqueCountAggregate::TreePartial UniqueCountAggregate::EmptyTreePartial()
    const {
  return FmSketch(sketch_bitmaps_, seed_);
}

void UniqueCountAggregate::MergeTree(TreePartial* into,
                                     const TreePartial& from) const {
  into->Merge(from);
}

UniqueCountAggregate::Synopsis UniqueCountAggregate::MakeSynopsis(
    NodeId node, uint32_t epoch) const {
  return MakeTreePartial(node, epoch);
}

UniqueCountAggregate::Synopsis UniqueCountAggregate::EmptySynopsis() const {
  return FmSketch(sketch_bitmaps_, seed_);
}

void UniqueCountAggregate::Fuse(Synopsis* into, const Synopsis& from) const {
  into->Merge(from);
}

void UniqueCountAggregate::MakeTreePartialInto(TreePartial* out, NodeId node,
                                               uint32_t epoch) const {
  out->Clear();
  out->AddKey(reading_(node, epoch));
}

void UniqueCountAggregate::MakeSynopsisInto(Synopsis* out, NodeId node,
                                            uint32_t epoch) const {
  MakeTreePartialInto(out, node, epoch);
}

UniqueCountAggregate::Result UniqueCountAggregate::EvaluateCombined(
    const TreePartial& p, const Synopsis& s) const {
  FmSketch u = p;
  u.Merge(s);
  return u.Estimate();
}

// ------------------------------------------------------- Uniform sample --

UniformSampleAggregate::UniformSampleAggregate(RealReadingFn reading,
                                               size_t sample_size,
                                               uint64_t seed)
    : reading_(std::move(reading)), sample_size_(sample_size), seed_(seed) {
  TD_CHECK(reading_ != nullptr);
  TD_CHECK_GT(sample_size, 0u);
}

UniformSampleAggregate::TreePartial UniformSampleAggregate::MakeTreePartial(
    NodeId node, uint32_t epoch) const {
  SampleSynopsis s(sample_size_, seed_);
  s.Add(node, reading_(node, epoch));
  return s;
}

UniformSampleAggregate::TreePartial UniformSampleAggregate::EmptyTreePartial()
    const {
  return SampleSynopsis(sample_size_, seed_);
}

void UniformSampleAggregate::MergeTree(TreePartial* into,
                                       const TreePartial& from) const {
  into->Merge(from);
}

UniformSampleAggregate::Synopsis UniformSampleAggregate::MakeSynopsis(
    NodeId node, uint32_t epoch) const {
  return MakeTreePartial(node, epoch);
}

UniformSampleAggregate::Synopsis UniformSampleAggregate::EmptySynopsis()
    const {
  return SampleSynopsis(sample_size_, seed_);
}

void UniformSampleAggregate::Fuse(Synopsis* into, const Synopsis& from) const {
  into->Merge(from);
}

UniformSampleAggregate::Result UniformSampleAggregate::EvaluateCombined(
    const TreePartial& p, const Synopsis& s) const {
  SampleSynopsis merged = p;
  merged.Merge(s);
  return merged;
}

// ------------------------------------------------------------- Quantile --

QuantileAggregate::QuantileAggregate(RealReadingFn reading, double p,
                                     size_t sample_size, uint64_t seed)
    : inner_(std::move(reading), sample_size, seed), p_(p) {
  TD_CHECK_GE(p_, 0.0);
  TD_CHECK_LE(p_, 1.0);
}

double QuantileAggregate::FromSample(const SampleSynopsis& s) const {
  if (s.Empty()) return 0.0;
  return s.EstimateQuantile(p_);
}

QuantileAggregate::Result QuantileAggregate::EvaluateCombined(
    const TreePartial& p, const Synopsis& s) const {
  return FromSample(inner_.EvaluateCombined(p, s));
}

}  // namespace td
