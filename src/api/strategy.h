// Runtime-selectable names for the framework's aggregation strategies and
// built-in aggregates: the vocabulary of the td::Engine / td::Experiment
// facade. The paper's central claim is that one framework subsumes tree
// aggregation (TAG), synopsis diffusion, and the adaptive Tributary-Delta
// hybrid; this header makes that a value, not a template parameter.
#ifndef TD_API_STRATEGY_H_
#define TD_API_STRATEGY_H_

namespace td {

/// Which aggregation scheme an Engine runs.
enum class Strategy {
  /// TAG tree aggregation, one attempt per message (Section 2).
  kTag,
  /// TAG with two extra per-message retransmissions (Figure 9(b)).
  kTagRetx,
  /// Synopsis diffusion over the rings topology (Section 2, "SD").
  kSynopsisDiffusion,
  /// Tributary-Delta with the fine-grained TD adaptation policy.
  kTributaryDelta,
  /// Tributary-Delta with the coarse (whole-level) adaptation policy.
  kTdCoarse,
};

inline constexpr Strategy kAllStrategies[] = {
    Strategy::kTag, Strategy::kTagRetx, Strategy::kSynopsisDiffusion,
    Strategy::kTributaryDelta, Strategy::kTdCoarse};

/// Display name matching the paper's figures ("TAG", "SD", "TD", ...).
inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kTag:
      return "TAG";
    case Strategy::kTagRetx:
      return "TAG+retx";
    case Strategy::kSynopsisDiffusion:
      return "SD";
    case Strategy::kTributaryDelta:
      return "TD";
    case Strategy::kTdCoarse:
      return "TD-Coarse";
  }
  return "?";
}

/// True for the strategies that maintain a tributary/delta region and run
/// an adaptation policy.
inline bool IsAdaptive(Strategy s) {
  return s == Strategy::kTributaryDelta || s == Strategy::kTdCoarse;
}

/// Which engine core executes the chosen strategy. Both cores run the same
/// protocol and are pinned bit-identical; they differ only in how epoch
/// state is laid out and what scale they reach.
enum class EngineCore {
  /// The original per-node-object engines (src/agg/, src/td/): typed
  /// synopsis/partial inboxes, per-inbox covered NodeSets. The default.
  kObject,
  /// The structure-of-arrays core (src/core/): flat bitmap-bank arenas,
  /// CSR adjacency, per-edge delivered bits, and an epoch-delta cache that
  /// replays unchanged nodes. Built for 100k-1M node epochs. Not available
  /// for kFrequentItems.
  kSoa,
};

inline const char* EngineCoreName(EngineCore c) {
  switch (c) {
    case EngineCore::kObject:
      return "object";
    case EngineCore::kSoa:
      return "soa";
  }
  return "?";
}

/// Which aggregate an Experiment computes (the Section 5 registry).
enum class AggregateKind {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kUniqueCount,
  kQuantile,
  /// Exponentially decayed average. Radio-side it is exactly kAvg (one
  /// duplicate-insensitive Sum + Count pair per epoch); the decay happens
  /// at the base station over the per-epoch sum/count components, so the
  /// instantaneous series reports the plain average while the windowed
  /// series reports the EWMA. Without an explicit Query::window it
  /// defaults to WindowSpec::Decayed(kDefaultEwmaAlpha).
  kEwma,
  /// Error-bounded quantile over an integer value domain via the q-digest
  /// summary (src/quant/): rank error <= digest_bits / digest_k,
  /// deterministic. Parameterized by Query::quantile_p (strict (0, 1)),
  /// Query::digest_bits and Query::digest_k.
  kQuantileQd,
  /// Modal-bucket midpoint of a power-of-two histogram derived from the
  /// same q-digest (Query::histogram_buckets).
  kHistogramQd,
  /// Estimated number of readings inside [Query::range_lo,
  /// Query::range_hi], derived from the same q-digest.
  kRangeCountQd,
  kFrequentItems,
};

inline const char* AggregateKindName(AggregateKind k) {
  switch (k) {
    case AggregateKind::kCount:
      return "Count";
    case AggregateKind::kSum:
      return "Sum";
    case AggregateKind::kAvg:
      return "Avg";
    case AggregateKind::kMin:
      return "Min";
    case AggregateKind::kMax:
      return "Max";
    case AggregateKind::kUniqueCount:
      return "UniqueCount";
    case AggregateKind::kQuantile:
      return "Quantile";
    case AggregateKind::kEwma:
      return "Ewma";
    case AggregateKind::kQuantileQd:
      return "QuantileQd";
    case AggregateKind::kHistogramQd:
      return "HistogramQd";
    case AggregateKind::kRangeCountQd:
      return "RangeCountQd";
    case AggregateKind::kFrequentItems:
      return "FrequentItems";
  }
  return "?";
}

}  // namespace td

#endif  // TD_API_STRATEGY_H_
