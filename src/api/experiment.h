// The Experiment builder: declarative construction of a full simulation --
// scenario, aggregate, strategy, loss model, epochs -- returning either a
// stepping facade (Build) or batch results (Run).
//
//   RunResult r = Experiment::Builder()
//                     .Synthetic(/*seed=*/42)
//                     .Aggregate(AggregateKind::kCount)
//                     .Strategy(Strategy::kTributaryDelta)
//                     .GlobalLossRate(0.2)
//                     .Warmup(150)
//                     .Epochs(60)
//                     .Run();
//
// This is the one entry point benches, examples and integration tests use;
// the class templates underneath stay available for aggregate-generic code
// (see api/engine.h's MakeEngine).
#ifndef TD_API_EXPERIMENT_H_
#define TD_API_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "agg/aggregates.h"
#include "api/engine.h"
#include "api/query.h"
#include "freq/item_source.h"
#include "freq/multipath_freq.h"
#include "freq/precision_gradient.h"
#include "link/link_layer.h"
#include "link/route_aging.h"
#include "net/loss_model.h"
#include "obs/telemetry.h"
#include "util/stats.h"
#include "window/query_window.h"
#include "window/window_truth.h"
#include "workload/dynamics.h"
#include "workload/scenario.h"

namespace td {

/// Per-query series of a run: one entry of RunResult.queries for every
/// query in the set (single-aggregate runs get exactly one).
struct QuerySeries {
  std::string name;

  /// Per measured epoch: the query's estimate and (when derivable) exact
  /// ground truth.
  std::vector<double> estimates;
  std::vector<double> truths;

  /// Relative RMS error of `estimates` vs `truths` (0 when no truth).
  double rms = 0.0;

  /// Windowed queries only (Query::window): the per-measured-epoch value
  /// of the window (base-station re-merge of per-epoch root states; zero
  /// radio bytes), the exact windowed ground truth re-aggregated from the
  /// stored per-epoch truth inputs (empty when the query's truth was
  /// overridden), and their relative RMS error. Windows run over warmup
  /// epochs too -- a standing query's history does not reset when
  /// measurement starts.
  std::vector<double> windowed_estimates;
  std::vector<double> windowed_truths;
  double windowed_rms = 0.0;

  /// Windowed queries only: state-maintenance merges the window performed
  /// over the whole run (warmup included). Sliding windows stay <= 2 per
  /// epoch, the two-stacks amortized bound (gated by bench_windows).
  size_t window_merges = 0;

  /// Grouped queries only (Query::GroupBy): one entry per region, sliced
  /// from the captured root state at zero extra radio bytes.
  /// group_estimates[g][e] is group g's estimate at measured epoch e;
  /// group_truths/group_rms mirror the global truth machinery per group
  /// (empty when the query's truth was overridden by the caller).
  std::vector<std::string> group_names;
  std::vector<std::vector<double>> group_estimates;
  std::vector<std::vector<double>> group_truths;
  std::vector<double> group_rms;
};

/// Batch outcome of Experiment::Run: the measured epochs plus the derived
/// series every paper figure reports.
struct RunResult {
  /// One entry per measured epoch (warmup epochs are discarded).
  std::vector<EpochResult> epochs;

  /// Which engine core produced the run (the Builder::Core axis).
  EngineCore core = EngineCore::kObject;

  /// Average self-state recomputes per measured epoch: how many nodes the
  /// epoch-delta cache could NOT replay. 0 for the object core (it has no
  /// incremental path); for the SoA core with constant readings this drops
  /// to ~0 after the first epoch, and equals the in-sweep node count when
  /// every reading changes each epoch.
  double nodes_reprocessed_per_epoch = 0.0;

  /// Per-epoch ground truth of the PRIMARY query; empty when no truth is
  /// known (FrequentItems without an explicit Truth function).
  std::vector<double> truths;

  /// Relative RMS error of the primary estimates vs `truths` (0 when no
  /// truth).
  double rms = 0.0;

  /// One series per query, index-aligned with the builder's query list.
  /// Empty only for FrequentItems (no scalar series).
  std::vector<QuerySeries> queries;

  /// Ground-truth contributing fraction per measured epoch.
  std::vector<double> contributing;

  /// Energy totals over the measured epochs (counters are reset after
  /// warmup when warmup > 0).
  EnergyStats energy;
  double bytes_per_epoch = 0.0;

  /// Split of bytes_per_epoch into the fixed per-message headers (charged
  /// once per physical transmission, shared by every query in a set) and
  /// everything riding in the payload. Multi-query amortization shows up
  /// here: header bytes stay flat as the query set widens.
  double header_bytes_per_epoch = 0.0;
  double payload_bytes_per_epoch = 0.0;

  /// Delta size after the last epoch (0 for strategies with no region).
  size_t final_delta_size = 0;

  /// Adaptation counters over the whole run, warmup included.
  EngineStats stats;

  /// Dynamic scenarios only: topology repair passes over the whole run
  /// (warmup included); 0 for static runs.
  size_t topology_repairs = 0;

  /// Link-layer unicast accounting over the measured epochs (all zero when
  /// the strategy sends no unicasts, e.g. pure synopsis diffusion).
  /// Fraction of logical unicasts whose data reached the receiver within
  /// the attempt budget.
  double delivery_ratio = 0.0;
  /// Physical data transmissions (first sends + retransmissions) per
  /// measured epoch.
  double attempts_per_epoch = 0.0;
  /// retry_histogram[k]: unicasts that used exactly k + 1 data
  /// transmissions (RetryStats::by_attempts).
  std::vector<uint64_t> retry_histogram;

  /// Route aging only: nodes re-parented away from blacklisted links over
  /// the whole run (warmup included); 0 without LinkLayer aging.
  size_t route_reroutes = 0;

  /// Telemetry (Builder::Telemetry only; `telemetry.enabled` says whether
  /// it ran): the drained metrics registry, flight-recorder events and
  /// phase profile of the run. Telemetry observes without consuming RNG
  /// draws, so every other field is bit-identical to a telemetry-off run.
  obs::TelemetrySummary telemetry;

  /// Per-node energy totals over the measured epochs (Builder::Telemetry
  /// only; empty otherwise -- at SoA scale a million-entry copy should be
  /// opt-in). Indexed by NodeId; the base station is included.
  std::vector<EnergyStats> node_energy;

  /// The k highest-energy nodes by radio bytes (ties: lower id first),
  /// from `node_energy`. The time-to-first-death input the ROADMAP's
  /// energy-lifetime item needs. Empty when telemetry was off.
  std::vector<std::pair<NodeId, EnergyStats>> top_energy_nodes(
      size_t k) const;

  /// The per-epoch numeric estimates, extracted from `epochs`.
  std::vector<double> estimates() const;
};

/// Outcome of a Monte Carlo sweep (Experiment::Builder::RunTrials): one
/// RunResult per trial plus cross-trial summary statistics. Trial t is
/// seeded deterministically from (base network seed, t), and the summaries
/// are merged in trial order, so a SweepResult is bit-identical for any
/// thread count or schedule.
struct SweepResult {
  /// Per-trial results, indexed by trial id.
  std::vector<RunResult> trials;

  /// Cross-trial distribution of the per-trial relative RMS error.
  RunningStat rms;

  /// Cross-trial distribution of the per-trial bytes/epoch.
  RunningStat bytes_per_epoch;

  /// All measured per-epoch estimates pooled across trials (per-trial
  /// accumulators combined with the parallel-Welford RunningStat::Merge).
  RunningStat estimates;

  /// Per-trial telemetry shards merged in trial order (counters add by
  /// name, phases slot-wise; see TelemetrySummary::Merge), so the merged
  /// series is bit-identical for any thread count. Per-trial events stay
  /// on trials[t].telemetry.
  obs::TelemetrySummary telemetry;
};

/// A fully wired simulation: owns (or references) the scenario, network,
/// aggregate and engine, keeping every lifetime straight so call sites
/// don't have to.
class Experiment {
 public:
  class Builder;

  Experiment(Experiment&&) = default;
  Experiment& operator=(Experiment&&) = default;

  /// The stepping interface for epoch-by-epoch call sites (timelines,
  /// region-map dumps, engines sharing one network).
  Engine& engine() { return *engine_; }
  const Scenario& scenario() const { return *scenario_; }
  Network& network() { return *network_; }

  /// The dynamic-scenario driver, or nullptr for static experiments.
  DynamicScenario* dynamics() { return dynamics_.get(); }

  /// The link-quality map, or nullptr without LinkLayer().
  const LinkQualityMap* link_quality() const { return link_quality_.get(); }

  /// The route ager, or nullptr without LinkLayer aging.
  RouteAger* route_ager() { return route_ager_.get(); }

  /// The telemetry sink, or nullptr without Builder::Telemetry().
  obs::TelemetrySink* telemetry() { return telemetry_.get(); }

  /// Runs one epoch through the facade: applies the epoch's dynamic events
  /// (when any), notifies the engine of topology repairs, then aggregates.
  /// Stepping call sites must visit epochs in increasing order.
  EpochResult StepEpoch(uint32_t epoch);

  /// Runs warmup then measured epochs and derives the summary series.
  /// Energy counters reset after warmup (shared-network users beware).
  RunResult Run();

 private:
  Experiment() = default;

  std::unique_ptr<td::Scenario> owned_scenario_;
  const td::Scenario* scenario_ = nullptr;
  std::shared_ptr<td::Network> network_;
  std::shared_ptr<const td::LinkQualityMap> link_quality_;
  std::unique_ptr<td::RouteAger> route_ager_;
  std::shared_ptr<void> aggregate_;  // keep-alive for the engine's aggregate
  std::unique_ptr<td::Engine> engine_;
  std::shared_ptr<td::DynamicScenario> dynamics_;
  std::shared_ptr<obs::TelemetrySink> telemetry_;
  // Engine-adjacent observation state: last-seen cumulative counters so
  // StepEpoch can emit per-epoch deltas (mode switches, reroutes, SoA
  // cache misses) without the engines knowing about telemetry.
  EngineStats obs_prev_stats_;
  uint64_t obs_prev_reprocessed_ = 0;
  std::vector<uint64_t> obs_node_bytes_prev_;
  uint32_t warmup_ = 0;
  uint32_t epochs_ = 0;
  std::function<double(uint32_t)> truth_;  // primary query's truth
  double population_ = 0.0;
  // Per-query metadata for RunResult.queries (empty for FrequentItems).
  std::vector<std::string> query_names_;
  std::vector<std::function<double(uint32_t)>> query_truths_;
  size_t primary_ = 0;

  // Windowed aggregation (window/): one slot per query when any query
  // carries a window. StepEpoch feeds every windowed query its slice of
  // the engine's captured root state and accumulates the windowed truth
  // series; Run slices the measured tail into QuerySeries.
  struct QueryWindowState {
    std::unique_ptr<td::QueryWindow> window;  // null for windowless queries
    std::unique_ptr<td::WindowTruth> truth;   // null when inputs unknown
    std::vector<double> truths;               // one entry per StepEpoch
  };
  std::vector<QueryWindowState> window_states_;
  bool any_window_ = false;
  // True when root state is QuerySet{TreePartial,Synopsis} payload vectors.
  bool query_set_engine_ = false;

  // Spatial group-by (quant/): one slot per query when any query carries a
  // GroupBy. StepEpoch slices per-group estimates out of the captured root
  // state; Run assembles per-group series and truths.
  struct QueryGroupState {
    std::unique_ptr<api_internal::GroupEval> eval;  // null when ungrouped
    std::vector<std::string> names;
    // Per-group exact truths; empty when the query's truth was overridden.
    std::vector<std::function<double(uint32_t)>> truths;
  };
  std::vector<QueryGroupState> group_states_;
  bool any_group_ = false;
};

class Experiment::Builder {
 public:
  Builder() = default;

  // ------------------------------------------------------------ scenario
  /// Uses an externally owned scenario (must outlive the Experiment).
  Builder& Scenario(const td::Scenario* scenario);
  /// Builds and owns the paper's Synthetic scenario.
  Builder& Synthetic(uint64_t seed, size_t num_sensors = 600);
  /// Builds and owns the LabData scenario.
  Builder& Lab(uint64_t seed);

  // ----------------------------------------------------------- aggregate
  /// Runs a single aggregate of `kind`: sugar for a one-query set (and
  /// bit-identical to it -- see DESIGN.md "Multi-query execution").
  /// Mutually exclusive with AddQuery.
  Builder& Aggregate(AggregateKind kind);
  /// Appends one standing query to the experiment's query set; repeatable.
  /// All queries in the set are computed in a single engine pass per
  /// epoch, sharing message headers (and the multi-path piggyback) so the
  /// per-query byte cost drops as the set widens. Every kind except
  /// kFrequentItems may join. Results come back per query in
  /// RunResult.queries[] (and EpochResult.query_values).
  Builder& AddQuery(td::Query query);
  /// Index (into AddQuery order) of the primary query: the one whose
  /// answer fills EpochResult.value, whose truth drives RunResult.rms, and
  /// which stands for the set wherever one scalar is reported. Default 0.
  Builder& PrimaryQuery(size_t index);
  /// Integer reading (Sum / Avg / UniqueCount; also Min/Max via cast).
  Builder& Reading(UintReadingFn reading);
  /// Real-valued reading (Min / Max); overrides Reading for those kinds.
  Builder& RealReading(RealReadingFn reading);
  /// Item collections (FrequentItems; must outlive the Experiment).
  Builder& Items(const ItemSource* items);
  /// Tree-side precision gradient (FrequentItems). Defaults to
  /// MinTotalLoadGradient(FreqParams().eps, measured domination factor).
  Builder& Gradient(std::shared_ptr<PrecisionGradient> gradient);
  /// Multi-path parameters (FrequentItems).
  Builder& FreqParams(MultipathFreqParams params);
  /// FM sketch bitmaps for Count/Sum/Avg/UniqueCount synopses.
  Builder& SketchBitmaps(int bitmaps);

  // ------------------------------------------------------------ strategy
  Builder& Strategy(td::Strategy strategy);
  /// Selects the engine core executing the strategy (default kObject).
  /// kSoa runs the structure-of-arrays core (src/core/) -- pinned
  /// bit-identical to the object core, built for 100k-1M node epochs.
  /// Rejected (TD_CHECK) in combination with kFrequentItems.
  Builder& Core(td::EngineCore core);
  /// Captures the base station's root aggregate state every epoch (see
  /// Engine::root_state). Implied by windowed queries; the federation tier
  /// sets EngineOptions::capture_root_state directly. Replaces calling
  /// Engine::EnableRootCapture by hand.
  Builder& CaptureRootState(bool capture = true);
  Builder& Options(EngineOptions options);
  Builder& Adaptation(AdaptationConfig config);
  Builder& AdaptPeriod(uint32_t period);
  Builder& Threshold(double threshold);
  Builder& Damping(bool on);
  /// Extra tree retransmissions (overrides the strategy default).
  Builder& TreeRetries(int extra);

  // ------------------------------------------------------------- dynamics
  /// Evolves the scenario across epochs (churn, bursty loss, duty cycles,
  /// loss sweeps -- see workload/dynamics.h). The scenario is cloned per
  /// experiment (and per trial) because repairs mutate it; the event
  /// stream is seeded from the trial's network seed, so RunTrials sweeps
  /// stay bit-identical for any thread count. Incompatible with Network()
  /// sharing and with kFrequentItems. A zero config.horizon is filled in
  /// with Warmup() + Epochs().
  Builder& Dynamics(DynamicsConfig config);

  // ------------------------------------------------------------ link layer
  /// Realistic link layer (src/link/): a persistent per-link quality map
  /// becomes the network's loss model, optionally steering parent
  /// selection (ETX routing, PRR ring floor), bounding retransmissions
  /// (RetryPolicy), aging persistently failing routes, and replaying a
  /// scripted fault schedule. The quality map is seeded from
  /// config.seed -- persistent across Monte Carlo trials -- while delivery
  /// draws keep the per-trial network seed. Supplies the loss model, so it
  /// excludes LossModel()/GlobalLossRate() and shared Network(); aging is
  /// additionally incompatible with Dynamics().
  Builder& LinkLayer(LinkLayerConfig config);

  // ------------------------------------------------------------ telemetry
  /// Attaches a telemetry sink (src/obs/): named metric series mirroring
  /// the energy/retry counters (totals and per-ring), a bounded
  /// flight-recorder event ring (retry outcomes, repairs, TD mode
  /// switches, reroutes), a TD_PROFILE_SCOPE phase profile, and the
  /// RunResult.node_energy / top_energy_nodes surface. Telemetry only
  /// observes -- results stay bit-identical to a telemetry-off run -- and
  /// off costs a null check per transmission. Incompatible with a shared
  /// Network() (the sink would tally foreign traffic).
  Builder& Telemetry(obs::TelemetryConfig config = {});

  // -------------------------------------------------------------- network
  Builder& LossModel(std::shared_ptr<td::LossModel> model);
  /// Loss model built against the resolved scenario (for RegionalLoss-style
  /// models that need the deployment).
  Builder& LossModel(
      std::function<std::shared_ptr<td::LossModel>(const td::Scenario&)>
          factory);
  Builder& GlobalLossRate(double p);
  Builder& NetworkSeed(uint64_t seed);
  /// Shares an existing network (and its RNG / energy accounting) instead
  /// of building one; excludes LossModel / NetworkSeed.
  Builder& Network(std::shared_ptr<td::Network> network);

  // ----------------------------------------------------------------- run
  Builder& Warmup(uint32_t epochs);
  Builder& Epochs(uint32_t epochs);
  /// Ground truth per epoch; defaults are derived from the aggregate kind
  /// and reading function (none for FrequentItems).
  Builder& Truth(std::function<double(uint32_t)> truth);

  // ------------------------------------------------------- trial sweeps
  /// Number of Monte Carlo trials RunTrials runs. Each trial gets its own
  /// engine, network and RNG stream, seeded from (NetworkSeed, trial).
  Builder& Trials(uint32_t trials);
  /// Worker threads for RunTrials; 0 (the default) means
  /// std::thread::hardware_concurrency(). Results are independent of the
  /// thread count: trials never share mutable state and summaries merge in
  /// trial order.
  Builder& Threads(unsigned threads);

  /// Wires everything and returns the stepping facade.
  Experiment Build();
  /// Build() + Run() for one-shot batch call sites.
  RunResult Run();
  /// Runs Trials() independent trials across Threads() workers. The
  /// scenario and loss model are resolved once and shared read-only;
  /// caller-supplied Reading/Truth functions must be pure (they are called
  /// concurrently). Incompatible with Network() sharing.
  SweepResult RunTrials();

 private:
  enum class ScenarioSource { kNone, kExternal, kSynthetic, kLab };

  ScenarioSource scenario_source_ = ScenarioSource::kNone;
  const td::Scenario* external_scenario_ = nullptr;
  uint64_t scenario_seed_ = 0;
  size_t num_sensors_ = 600;

  AggregateKind kind_ = AggregateKind::kCount;
  bool kind_set_ = false;
  std::vector<td::Query> queries_;
  size_t primary_ = 0;
  UintReadingFn reading_;
  RealReadingFn real_reading_;
  const ItemSource* items_ = nullptr;
  std::shared_ptr<PrecisionGradient> gradient_;
  MultipathFreqParams freq_params_;
  int sketch_bitmaps_ = 0;  // 0: aggregate default

  td::Strategy strategy_ = td::Strategy::kTag;
  td::EngineCore core_ = td::EngineCore::kObject;
  bool capture_root_state_ = false;
  EngineOptions options_;
  std::optional<DynamicsConfig> dynamics_;
  std::optional<LinkLayerConfig> link_layer_;
  std::optional<obs::TelemetryConfig> telemetry_;

  std::shared_ptr<td::LossModel> loss_;
  std::function<std::shared_ptr<td::LossModel>(const td::Scenario&)>
      loss_factory_;
  uint64_t network_seed_ = 1;
  bool network_seed_set_ = false;
  std::shared_ptr<td::Network> shared_network_;

  uint32_t warmup_ = 0;
  uint32_t epochs_ = 0;
  std::function<double(uint32_t)> truth_;
  uint32_t trials_ = 1;
  unsigned threads_ = 0;  // 0: hardware_concurrency
};

}  // namespace td

#endif  // TD_API_EXPERIMENT_H_
