#include "api/query.h"

#include <algorithm>
#include <set>
#include <utility>

#include "sketch/fm_sketch.h"
#include "util/check.h"
#include "util/stats.h"

namespace td {
namespace api_internal {
namespace {

/// Default synopsis seeds per kind, matching the aggregate constructors'
/// defaults so query sets and directly constructed aggregates agree
/// bit-for-bit.
uint64_t DefaultSeed(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return 1;
    case AggregateKind::kSum:
      return 2;
    case AggregateKind::kAvg:
      return 3;
    case AggregateKind::kQuantile:
      return 4;
    case AggregateKind::kUniqueCount:
      return 5;
    case AggregateKind::kEwma:
      return 6;  // decorrelates from a kAvg query sharing the set
    default:
      return 0;  // Min/Max and FrequentItems take no synopsis seed here
  }
}

bool NeedsUintReading(AggregateKind kind) {
  return kind == AggregateKind::kSum || kind == AggregateKind::kAvg ||
         kind == AggregateKind::kUniqueCount ||
         kind == AggregateKind::kEwma;
}

bool NeedsRealReading(AggregateKind kind) {
  return kind == AggregateKind::kMin || kind == AggregateKind::kMax ||
         kind == AggregateKind::kQuantile;
}

}  // namespace

Query ResolveQuery(Query q, const UintReadingFn& builder_reading,
                   const RealReadingFn& builder_real_reading,
                   int builder_sketch_bitmaps) {
  TD_CHECK_MSG(q.kind != AggregateKind::kFrequentItems,
               "kFrequentItems cannot join a query set: its result is not a "
               "scalar; run it via Aggregate(kFrequentItems)");
  if (q.name.empty()) q.name = AggregateKindName(q.kind);
  // A per-query integer reading outranks the builder-level real reading
  // (it is the more specific choice), mirroring how the builder-level
  // integer reading backfills the real reading for Min/Max.
  if (!q.real_reading) {
    if (q.reading) {
      UintReadingFn r = q.reading;
      q.real_reading = [r](NodeId v, uint32_t e) {
        return static_cast<double>(r(v, e));
      };
    } else if (builder_real_reading) {
      q.real_reading = builder_real_reading;
    } else if (builder_reading) {
      UintReadingFn r = builder_reading;
      q.real_reading = [r](NodeId v, uint32_t e) {
        return static_cast<double>(r(v, e));
      };
    }
  }
  if (!q.reading) q.reading = builder_reading;
  if (q.sketch_bitmaps <= 0) q.sketch_bitmaps = builder_sketch_bitmaps;
  if (q.sketch_bitmaps <= 0) q.sketch_bitmaps = FmSketch::kDefaultBitmaps;
  if (q.sketch_seed == 0) q.sketch_seed = DefaultSeed(q.kind);
  if (q.sample_size == 0) q.sample_size = kDefaultQuantileSampleSize;
  TD_CHECK_MSG(!(NeedsUintReading(q.kind) && q.reading == nullptr),
               "Sum/Avg/UniqueCount queries need an integer Reading(), on "
               "the query or on the builder");
  TD_CHECK_MSG(!(NeedsRealReading(q.kind) && q.real_reading == nullptr),
               "Min/Max/Quantile queries need a RealReading() or Reading(), "
               "on the query or on the builder");
  TD_CHECK_MSG(q.quantile_p >= 0.0 && q.quantile_p <= 1.0,
               "Query::quantile_p must lie in [0, 1]");
  // An EWMA query IS its decayed window; default one in when the caller
  // didn't pick an explicit shape.
  if (q.kind == AggregateKind::kEwma && !q.window.windowed()) {
    q.window = WindowSpec::Decayed(kDefaultEwmaAlpha);
  }
  ValidateWindowSpec(q.window, q.kind);
  return q;
}

std::unique_ptr<QueryOps> MakeQueryOps(const Query& q) {
  return VisitQueryAggregate(q, [](auto agg) -> std::unique_ptr<QueryOps> {
    return std::make_unique<QueryOpsImpl<decltype(agg)>>(std::move(agg));
  });
}

std::function<double(uint32_t)> MakeDefaultQueryTruth(
    const Query& q, SensorListFn sensors_at) {
  if (q.truth) return q.truth;
  switch (q.kind) {
    case AggregateKind::kCount:
      return [sensors_at](uint32_t e) {
        return static_cast<double>(sensors_at(e)->size());
      };
    case AggregateKind::kSum: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        // Bind the list before iterating: range-for over *sensors_at(e)
        // would destroy the temporary shared_ptr (and under dynamics the
        // freshly built list it owns) before the loop body runs.
        auto up = sensors_at(e);
        double t = 0;
        for (NodeId v : *up) {
          t += static_cast<double>(reading(v, e));
        }
        return t;
      };
    }
    case AggregateKind::kAvg:
    case AggregateKind::kEwma: {
      // kEwma's instantaneous series is the plain average; the decayed
      // comparison lives in the windowed series (windowed_truths).
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        auto up = sensors_at(e);
        if (up->empty()) return 0.0;
        double t = 0;
        for (NodeId v : *up) t += static_cast<double>(reading(v, e));
        return t / static_cast<double>(up->size());
      };
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      RealReadingFn real_reading = q.real_reading;
      const bool is_min = q.kind == AggregateKind::kMin;
      return [sensors_at, real_reading, is_min](uint32_t e) {
        auto up = sensors_at(e);
        if (up->empty()) return 0.0;
        double t = real_reading(up->front(), e);
        for (NodeId v : *up) {
          double r = real_reading(v, e);
          t = is_min ? std::min(t, r) : std::max(t, r);
        }
        return t;
      };
    }
    case AggregateKind::kUniqueCount: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        auto up = sensors_at(e);  // keep the list alive across the loop
        std::set<uint64_t> distinct;
        for (NodeId v : *up) distinct.insert(reading(v, e));
        return static_cast<double>(distinct.size());
      };
    }
    case AggregateKind::kQuantile: {
      RealReadingFn real_reading = q.real_reading;
      const double p = q.quantile_p;
      return [sensors_at, real_reading, p](uint32_t e) {
        auto up = sensors_at(e);
        if (up->empty()) return 0.0;
        std::vector<double> values;
        values.reserve(up->size());
        for (NodeId v : *up) values.push_back(real_reading(v, e));
        return Quantile(std::move(values), p);
      };
    }
    case AggregateKind::kFrequentItems:
      break;
  }
  return nullptr;
}

WindowTruthInputFn MakeWindowTruthInputs(const Query& q,
                                         SensorListFn sensors_at) {
  if (q.truth) return nullptr;  // override: default inputs could contradict
  switch (q.kind) {
    case AggregateKind::kCount:
      return [sensors_at](uint32_t e) {
        WindowTruthInputs in;
        in.num = static_cast<double>(sensors_at(e)->size());
        return in;
      };
    case AggregateKind::kSum: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);  // keep the list alive across the loop
        for (NodeId v : *up) {
          in.num += static_cast<double>(reading(v, e));
        }
        return in;
      };
    }
    case AggregateKind::kAvg:
    case AggregateKind::kEwma: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);
        for (NodeId v : *up) in.num += static_cast<double>(reading(v, e));
        in.den = static_cast<double>(up->size());
        return in;
      };
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      RealReadingFn real_reading = q.real_reading;
      const bool is_min = q.kind == AggregateKind::kMin;
      return [sensors_at, real_reading, is_min](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);
        if (up->empty()) return in;  // has_extremum stays false
        in.num = real_reading(up->front(), e);
        in.has_extremum = true;
        for (NodeId v : *up) {
          double r = real_reading(v, e);
          in.num = is_min ? std::min(in.num, r) : std::max(in.num, r);
        }
        return in;
      };
    }
    case AggregateKind::kUniqueCount: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);  // keep the list alive across the loop
        std::set<uint64_t> distinct;
        for (NodeId v : *up) distinct.insert(reading(v, e));
        in.distinct.assign(distinct.begin(), distinct.end());
        return in;
      };
    }
    case AggregateKind::kQuantile: {
      RealReadingFn real_reading = q.real_reading;
      return [sensors_at, real_reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);
        in.values.reserve(up->size());
        for (NodeId v : *up) in.values.push_back(real_reading(v, e));
        return in;
      };
    }
    case AggregateKind::kFrequentItems:
      break;
  }
  return nullptr;
}

}  // namespace api_internal
}  // namespace td
