#include "api/query.h"

#include <algorithm>
#include <set>
#include <type_traits>
#include <utility>

#include "sketch/fm_sketch.h"
#include "util/check.h"
#include "util/stats.h"

namespace td {
namespace api_internal {
namespace {

/// Default synopsis seeds per kind, matching the aggregate constructors'
/// defaults so query sets and directly constructed aggregates agree
/// bit-for-bit.
bool IsQDigestKind(AggregateKind kind) {
  return kind == AggregateKind::kQuantileQd ||
         kind == AggregateKind::kHistogramQd ||
         kind == AggregateKind::kRangeCountQd;
}

uint64_t DefaultSeed(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return 1;
    case AggregateKind::kSum:
      return 2;
    case AggregateKind::kAvg:
      return 3;
    case AggregateKind::kQuantile:
      return 4;
    case AggregateKind::kUniqueCount:
      return 5;
    case AggregateKind::kEwma:
      return 6;  // decorrelates from a kAvg query sharing the set
    default:
      return 0;  // Min/Max and FrequentItems take no synopsis seed here
  }
}

bool NeedsUintReading(AggregateKind kind) {
  return kind == AggregateKind::kSum || kind == AggregateKind::kAvg ||
         kind == AggregateKind::kUniqueCount ||
         kind == AggregateKind::kEwma || IsQDigestKind(kind);
}

bool NeedsRealReading(AggregateKind kind) {
  return kind == AggregateKind::kMin || kind == AggregateKind::kMax ||
         kind == AggregateKind::kQuantile;
}

}  // namespace

Query ResolveQuery(Query q, const UintReadingFn& builder_reading,
                   const RealReadingFn& builder_real_reading,
                   int builder_sketch_bitmaps) {
  TD_CHECK_MSG(q.kind != AggregateKind::kFrequentItems,
               "kFrequentItems cannot join a query set: its result is not a "
               "scalar; run it via Aggregate(kFrequentItems)");
  if (q.name.empty()) q.name = AggregateKindName(q.kind);
  // A per-query integer reading outranks the builder-level real reading
  // (it is the more specific choice), mirroring how the builder-level
  // integer reading backfills the real reading for Min/Max.
  if (!q.real_reading) {
    if (q.reading) {
      UintReadingFn r = q.reading;
      q.real_reading = [r](NodeId v, uint32_t e) {
        return static_cast<double>(r(v, e));
      };
    } else if (builder_real_reading) {
      q.real_reading = builder_real_reading;
    } else if (builder_reading) {
      UintReadingFn r = builder_reading;
      q.real_reading = [r](NodeId v, uint32_t e) {
        return static_cast<double>(r(v, e));
      };
    }
  }
  if (!q.reading) q.reading = builder_reading;
  if (q.sketch_bitmaps <= 0) q.sketch_bitmaps = builder_sketch_bitmaps;
  if (q.sketch_bitmaps <= 0) q.sketch_bitmaps = FmSketch::kDefaultBitmaps;
  if (q.sketch_seed == 0) q.sketch_seed = DefaultSeed(q.kind);
  if (q.sample_size == 0) q.sample_size = kDefaultQuantileSampleSize;
  TD_CHECK_MSG(!(NeedsUintReading(q.kind) && q.reading == nullptr),
               "Sum/Avg/UniqueCount queries need an integer Reading(), on "
               "the query or on the builder");
  TD_CHECK_MSG(!(NeedsRealReading(q.kind) && q.real_reading == nullptr),
               "Min/Max/Quantile queries need a RealReading() or Reading(), "
               "on the query or on the builder");
  TD_CHECK_MSG(q.quantile_p >= 0.0 && q.quantile_p <= 1.0,
               "Query::quantile_p must lie in [0, 1]");
  if (IsQDigestKind(q.kind)) {
    if (q.digest_bits == 0) q.digest_bits = 16;
    if (q.digest_k == 0) q.digest_k = 32;
    TD_CHECK_MSG(q.digest_bits >= 1 && q.digest_bits <= 32,
                 "Query::digest_bits must lie in [1, 32]: the q-digest "
                 "domain is [0, 2^bits) over integer readings");
    TD_CHECK_MSG(q.digest_k >= 1,
                 "Query::digest_k must be >= 1: the q-digest rank error "
                 "bound is digest_bits / digest_k");
    if (q.kind == AggregateKind::kQuantileQd) {
      TD_CHECK_MSG(q.quantile_p > 0.0 && q.quantile_p < 1.0,
                   "Query::quantile_p must lie strictly in (0, 1) for "
                   "kQuantileQd: the q-digest rank bound is vacuous at "
                   "the endpoints");
    }
    if (q.kind == AggregateKind::kRangeCountQd) {
      if (q.range_lo == 0 && q.range_hi == 0) {
        q.range_hi = (1ull << q.digest_bits) - 1;  // full domain
      }
      TD_CHECK_MSG(
          q.range_lo <= q.range_hi && q.range_hi < (1ull << q.digest_bits),
          "kRangeCountQd needs range_lo <= range_hi < 2^digest_bits");
    }
    if (q.kind == AggregateKind::kHistogramQd) {
      if (q.histogram_buckets == 0) q.histogram_buckets = 8;
      TD_CHECK_MSG(q.histogram_buckets >= 1 &&
                       (q.histogram_buckets & (q.histogram_buckets - 1)) ==
                           0 &&
                       static_cast<uint64_t>(q.histogram_buckets) <=
                           (1ull << q.digest_bits),
                   "Query::histogram_buckets must be a power of two within "
                   "the value domain");
    }
  }
  // An EWMA query IS its decayed window; default one in when the caller
  // didn't pick an explicit shape.
  if (q.kind == AggregateKind::kEwma && !q.window.windowed()) {
    q.window = WindowSpec::Decayed(kDefaultEwmaAlpha);
  }
  TD_CHECK_MSG(!(q.group_by.active() &&
                 q.window.kind == WindowKind::kDecayed),
               "GroupBy is incompatible with a decayed window: the EWMA "
               "num/den split runs over the global scalar and would smear "
               "the grouped ratio; use a sliding window instead");
  ValidateWindowSpec(q.window, q.kind);
  return q;
}

std::unique_ptr<QueryOps> MakeQueryOps(const Query& q) {
  return VisitQueryAggregate(q, [](auto agg) -> std::unique_ptr<QueryOps> {
    return std::make_unique<QueryOpsImpl<decltype(agg)>>(std::move(agg));
  });
}

std::function<double(uint32_t)> MakeDefaultQueryTruth(
    const Query& q, SensorListFn sensors_at) {
  if (q.truth) return q.truth;
  switch (q.kind) {
    case AggregateKind::kCount:
      return [sensors_at](uint32_t e) {
        return static_cast<double>(sensors_at(e)->size());
      };
    case AggregateKind::kSum: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        // Bind the list before iterating: range-for over *sensors_at(e)
        // would destroy the temporary shared_ptr (and under dynamics the
        // freshly built list it owns) before the loop body runs.
        auto up = sensors_at(e);
        double t = 0;
        for (NodeId v : *up) {
          t += static_cast<double>(reading(v, e));
        }
        return t;
      };
    }
    case AggregateKind::kAvg:
    case AggregateKind::kEwma: {
      // kEwma's instantaneous series is the plain average; the decayed
      // comparison lives in the windowed series (windowed_truths).
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        auto up = sensors_at(e);
        if (up->empty()) return 0.0;
        double t = 0;
        for (NodeId v : *up) t += static_cast<double>(reading(v, e));
        return t / static_cast<double>(up->size());
      };
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      RealReadingFn real_reading = q.real_reading;
      const bool is_min = q.kind == AggregateKind::kMin;
      return [sensors_at, real_reading, is_min](uint32_t e) {
        auto up = sensors_at(e);
        if (up->empty()) return 0.0;
        double t = real_reading(up->front(), e);
        for (NodeId v : *up) {
          double r = real_reading(v, e);
          t = is_min ? std::min(t, r) : std::max(t, r);
        }
        return t;
      };
    }
    case AggregateKind::kUniqueCount: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        auto up = sensors_at(e);  // keep the list alive across the loop
        std::set<uint64_t> distinct;
        for (NodeId v : *up) distinct.insert(reading(v, e));
        return static_cast<double>(distinct.size());
      };
    }
    case AggregateKind::kQuantile: {
      RealReadingFn real_reading = q.real_reading;
      const double p = q.quantile_p;
      return [sensors_at, real_reading, p](uint32_t e) {
        auto up = sensors_at(e);
        if (up->empty()) return 0.0;
        std::vector<double> values;
        values.reserve(up->size());
        for (NodeId v : *up) values.push_back(real_reading(v, e));
        return Quantile(std::move(values), p);
      };
    }
    case AggregateKind::kQuantileQd: {
      // Exact nearest-rank quantile over the integer readings -- the
      // value the digest approximates within digest_bits / digest_k.
      UintReadingFn reading = q.reading;
      const double p = q.quantile_p;
      return [sensors_at, reading, p](uint32_t e) {
        auto up = sensors_at(e);  // keep the list alive across the loop
        if (up->empty()) return 0.0;
        std::vector<double> values;
        values.reserve(up->size());
        for (NodeId v : *up) {
          values.push_back(static_cast<double>(reading(v, e)));
        }
        return Quantile(std::move(values), p);
      };
    }
    case AggregateKind::kRangeCountQd: {
      UintReadingFn reading = q.reading;
      const uint64_t lo = q.range_lo;
      const uint64_t hi = q.range_hi;
      return [sensors_at, reading, lo, hi](uint32_t e) {
        auto up = sensors_at(e);
        double count = 0.0;
        for (NodeId v : *up) {
          const uint64_t r = reading(v, e);
          if (r >= lo && r <= hi) count += 1.0;
        }
        return count;
      };
    }
    case AggregateKind::kHistogramQd: {
      // Exact modal-bucket midpoint, computed with the same bucket edges
      // and tie-break (lowest bucket) as QDigest::HistogramMode.
      UintReadingFn reading = q.reading;
      const int buckets = q.histogram_buckets;
      const uint64_t width =
          (1ull << q.digest_bits) / static_cast<uint64_t>(buckets);
      return [sensors_at, reading, buckets, width](uint32_t e) {
        auto up = sensors_at(e);
        std::vector<uint64_t> counts(static_cast<size_t>(buckets), 0);
        for (NodeId v : *up) {
          size_t b = static_cast<size_t>(reading(v, e) / width);
          if (b >= counts.size()) b = counts.size() - 1;
          ++counts[b];
        }
        size_t best = 0;
        for (size_t b = 1; b < counts.size(); ++b) {
          if (counts[b] > counts[best]) best = b;
        }
        return static_cast<double>(best) * static_cast<double>(width) +
               static_cast<double>(width) * 0.5;
      };
    }
    case AggregateKind::kFrequentItems:
      break;
  }
  return nullptr;
}

WindowTruthInputFn MakeWindowTruthInputs(const Query& q,
                                         SensorListFn sensors_at) {
  if (q.truth) return nullptr;  // override: default inputs could contradict
  switch (q.kind) {
    case AggregateKind::kCount:
      return [sensors_at](uint32_t e) {
        WindowTruthInputs in;
        in.num = static_cast<double>(sensors_at(e)->size());
        return in;
      };
    case AggregateKind::kSum: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);  // keep the list alive across the loop
        for (NodeId v : *up) {
          in.num += static_cast<double>(reading(v, e));
        }
        return in;
      };
    }
    case AggregateKind::kAvg:
    case AggregateKind::kEwma: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);
        for (NodeId v : *up) in.num += static_cast<double>(reading(v, e));
        in.den = static_cast<double>(up->size());
        return in;
      };
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      RealReadingFn real_reading = q.real_reading;
      const bool is_min = q.kind == AggregateKind::kMin;
      return [sensors_at, real_reading, is_min](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);
        if (up->empty()) return in;  // has_extremum stays false
        in.num = real_reading(up->front(), e);
        in.has_extremum = true;
        for (NodeId v : *up) {
          double r = real_reading(v, e);
          in.num = is_min ? std::min(in.num, r) : std::max(in.num, r);
        }
        return in;
      };
    }
    case AggregateKind::kUniqueCount: {
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);  // keep the list alive across the loop
        std::set<uint64_t> distinct;
        for (NodeId v : *up) distinct.insert(reading(v, e));
        in.distinct.assign(distinct.begin(), distinct.end());
        return in;
      };
    }
    case AggregateKind::kQuantile: {
      RealReadingFn real_reading = q.real_reading;
      return [sensors_at, real_reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);
        in.values.reserve(up->size());
        for (NodeId v : *up) in.values.push_back(real_reading(v, e));
        return in;
      };
    }
    case AggregateKind::kQuantileQd: {
      // Pooled-multiset semantics, like kQuantile, but over the integer
      // reading the digest summarizes.
      UintReadingFn reading = q.reading;
      return [sensors_at, reading](uint32_t e) {
        WindowTruthInputs in;
        auto up = sensors_at(e);
        in.values.reserve(up->size());
        for (NodeId v : *up) {
          in.values.push_back(static_cast<double>(reading(v, e)));
        }
        return in;
      };
    }
    case AggregateKind::kRangeCountQd:
    case AggregateKind::kHistogramQd:
      // No windowed ground truth: WindowTruth's Combine would need the
      // query's range / bucket parameters, which it does not carry. The
      // windowed estimate series still runs; its truth series stays
      // empty (same contract as a caller-overridden truth).
      return nullptr;
    case AggregateKind::kFrequentItems:
      break;
  }
  return nullptr;
}

SensorListFn FilterSensorsByGroup(SensorListFn sensors_at,
                                  std::shared_ptr<const RegionGrid> grid,
                                  int group) {
  TD_CHECK(grid != nullptr);
  return [sensors_at, grid, group](uint32_t e) {
    auto up = sensors_at(e);  // keep the source list alive while filtering
    auto filtered = std::make_shared<std::vector<NodeId>>();
    filtered->reserve(up->size());
    for (NodeId v : *up) {
      const int g = grid->GroupOf(v);
      if (group < 0 ? g >= 0 : g == group) filtered->push_back(v);
    }
    return std::shared_ptr<const std::vector<NodeId>>(std::move(filtered));
  };
}

namespace {

/// GroupEval over the concrete GroupByAggregate type VisitQueryAggregate
/// builds for the query -- the casts below are the exact inverse of the
/// engine's own root-state type erasure.
template <typename A>
class GroupEvalImpl final : public GroupEval {
 public:
  explicit GroupEvalImpl(A aggregate) : agg_(std::move(aggregate)) {}

  size_t num_groups() const override { return agg_.num_groups(); }

  void Evaluate(const void* tree_partial, const void* synopsis,
                std::vector<double>* out) const override {
    agg_.EvaluateGroups(
        static_cast<const typename A::TreePartial*>(tree_partial),
        static_cast<const typename A::Synopsis*>(synopsis), out);
  }

 private:
  A agg_;
};

}  // namespace

std::unique_ptr<GroupEval> MakeGroupEval(const Query& q) {
  if (q.resolved_groups == nullptr) return nullptr;
  return VisitQueryAggregate(
      q, [](auto agg) -> std::unique_ptr<GroupEval> {
        using A = std::decay_t<decltype(agg)>;
        if constexpr (quant_internal::IsGroupBy<A>::value) {
          return std::make_unique<GroupEvalImpl<A>>(std::move(agg));
        } else {
          return nullptr;  // unreachable: resolved_groups forces the wrap
        }
      });
}

}  // namespace api_internal
}  // namespace td
