#include "api/experiment.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <type_traits>
#include <utility>

#include "agg/aggregates.h"
#include "topology/domination.h"
#include "topology/tree_builder.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/stats.h"

namespace td {

std::vector<double> RunResult::estimates() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const EpochResult& e : epochs) out.push_back(e.value);
  return out;
}

std::vector<std::pair<NodeId, EnergyStats>> RunResult::top_energy_nodes(
    size_t k) const {
  std::vector<std::pair<NodeId, EnergyStats>> out;
  out.reserve(node_energy.size());
  for (NodeId v = 0; v < node_energy.size(); ++v) {
    out.emplace_back(v, node_energy[v]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.bytes != b.second.bytes) return a.second.bytes > b.second.bytes;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

// ----------------------------------------------------------------- Builder

Experiment::Builder& Experiment::Builder::Scenario(
    const td::Scenario* scenario) {
  TD_CHECK(scenario != nullptr);
  scenario_source_ = ScenarioSource::kExternal;
  external_scenario_ = scenario;
  return *this;
}

Experiment::Builder& Experiment::Builder::Synthetic(uint64_t seed,
                                                    size_t num_sensors) {
  scenario_source_ = ScenarioSource::kSynthetic;
  scenario_seed_ = seed;
  num_sensors_ = num_sensors;
  return *this;
}

Experiment::Builder& Experiment::Builder::Lab(uint64_t seed) {
  scenario_source_ = ScenarioSource::kLab;
  scenario_seed_ = seed;
  return *this;
}

Experiment::Builder& Experiment::Builder::Aggregate(AggregateKind kind) {
  kind_ = kind;
  kind_set_ = true;
  return *this;
}

Experiment::Builder& Experiment::Builder::AddQuery(td::Query query) {
  TD_CHECK_MSG(query.kind != AggregateKind::kFrequentItems,
               "kFrequentItems cannot join a query set: its result is not a "
               "scalar; run it via Aggregate(kFrequentItems)");
  queries_.push_back(std::move(query));
  return *this;
}

Experiment::Builder& Experiment::Builder::PrimaryQuery(size_t index) {
  primary_ = index;
  return *this;
}

Experiment::Builder& Experiment::Builder::Reading(UintReadingFn reading) {
  reading_ = std::move(reading);
  return *this;
}

Experiment::Builder& Experiment::Builder::RealReading(RealReadingFn reading) {
  real_reading_ = std::move(reading);
  return *this;
}

Experiment::Builder& Experiment::Builder::Items(const ItemSource* items) {
  items_ = items;
  return *this;
}

Experiment::Builder& Experiment::Builder::Gradient(
    std::shared_ptr<PrecisionGradient> gradient) {
  gradient_ = std::move(gradient);
  return *this;
}

Experiment::Builder& Experiment::Builder::FreqParams(
    MultipathFreqParams params) {
  freq_params_ = params;
  return *this;
}

Experiment::Builder& Experiment::Builder::SketchBitmaps(int bitmaps) {
  sketch_bitmaps_ = bitmaps;
  return *this;
}

Experiment::Builder& Experiment::Builder::Strategy(td::Strategy strategy) {
  strategy_ = strategy;
  return *this;
}

Experiment::Builder& Experiment::Builder::Core(td::EngineCore core) {
  core_ = core;
  return *this;
}

Experiment::Builder& Experiment::Builder::CaptureRootState(bool capture) {
  capture_root_state_ = capture;
  return *this;
}

Experiment::Builder& Experiment::Builder::Options(EngineOptions options) {
  options_ = options;
  return *this;
}

Experiment::Builder& Experiment::Builder::Adaptation(AdaptationConfig config) {
  options_.adaptation = config;
  return *this;
}

Experiment::Builder& Experiment::Builder::AdaptPeriod(uint32_t period) {
  options_.adaptation.period = period;
  return *this;
}

Experiment::Builder& Experiment::Builder::Threshold(double threshold) {
  options_.adaptation.threshold = threshold;
  return *this;
}

Experiment::Builder& Experiment::Builder::Damping(bool on) {
  options_.adaptation.damping = on;
  return *this;
}

Experiment::Builder& Experiment::Builder::TreeRetries(int extra) {
  options_.tree_extra_retransmissions = extra;
  return *this;
}

Experiment::Builder& Experiment::Builder::Dynamics(DynamicsConfig config) {
  dynamics_ = std::move(config);
  return *this;
}

Experiment::Builder& Experiment::Builder::LinkLayer(LinkLayerConfig config) {
  link_layer_ = std::move(config);
  return *this;
}

Experiment::Builder& Experiment::Builder::Telemetry(
    obs::TelemetryConfig config) {
  telemetry_ = config;
  return *this;
}

Experiment::Builder& Experiment::Builder::LossModel(
    std::shared_ptr<td::LossModel> model) {
  loss_ = std::move(model);
  return *this;
}

Experiment::Builder& Experiment::Builder::LossModel(
    std::function<std::shared_ptr<td::LossModel>(const td::Scenario&)>
        factory) {
  loss_factory_ = std::move(factory);
  return *this;
}

Experiment::Builder& Experiment::Builder::GlobalLossRate(double p) {
  loss_ = std::make_shared<GlobalLoss>(p);
  return *this;
}

Experiment::Builder& Experiment::Builder::NetworkSeed(uint64_t seed) {
  network_seed_ = seed;
  network_seed_set_ = true;
  return *this;
}

Experiment::Builder& Experiment::Builder::Network(
    std::shared_ptr<td::Network> network) {
  shared_network_ = std::move(network);
  return *this;
}

Experiment::Builder& Experiment::Builder::Warmup(uint32_t epochs) {
  warmup_ = epochs;
  return *this;
}

Experiment::Builder& Experiment::Builder::Epochs(uint32_t epochs) {
  epochs_ = epochs;
  return *this;
}

Experiment::Builder& Experiment::Builder::Truth(
    std::function<double(uint32_t)> truth) {
  truth_ = std::move(truth);
  return *this;
}

Experiment::Builder& Experiment::Builder::Trials(uint32_t trials) {
  trials_ = trials;
  return *this;
}

Experiment::Builder& Experiment::Builder::Threads(unsigned threads) {
  threads_ = threads;
  return *this;
}

Experiment Experiment::Builder::Build() {
  Experiment exp;

  // Fail fast on incompatible combinations, with diagnostics that say what
  // to change -- a silently misbehaving simulation is worse than an abort.
  TD_CHECK_MSG(!(kind_set_ && !queries_.empty()),
               "Aggregate(kind) and AddQuery(...) are mutually exclusive: "
               "Aggregate is sugar for a one-query set, so fold it into the "
               "AddQuery list instead");
  TD_CHECK_MSG(!(dynamics_ && shared_network_),
               "Dynamics() is incompatible with a shared Network(): dynamic "
               "repairs mutate the experiment's own scenario and node "
               "activity state");
  TD_CHECK_MSG(!(dynamics_ && queries_.empty() &&
                 kind_ == AggregateKind::kFrequentItems),
               "Dynamics() does not support kFrequentItems: its item "
               "streams and precision gradient assume a static tree");
  TD_CHECK_MSG(!(core_ == EngineCore::kSoa && queries_.empty() &&
                 kind_ == AggregateKind::kFrequentItems),
               "Core(kSoa) does not support kFrequentItems: the frequent-"
               "items engine has its own multi-path machinery with no SoA "
               "twin; use the default object core");
  TD_CHECK_MSG(!(telemetry_ && shared_network_),
               "Telemetry() is incompatible with a shared Network(): the "
               "sink would tally the other users' traffic into this "
               "experiment's series");
  if (shared_network_) {
    TD_CHECK_MSG(loss_ == nullptr && !loss_factory_,
                 "LossModel()/GlobalLossRate() is incompatible with a "
                 "shared Network(): the shared network already owns its "
                 "loss model");
    TD_CHECK_MSG(!network_seed_set_,
                 "NetworkSeed() is incompatible with a shared Network(): "
                 "the shared network already owns its RNG stream");
  }
  if (link_layer_) {
    link_layer_->Validate();
    TD_CHECK_MSG(loss_ == nullptr && !loss_factory_,
                 "LinkLayer() supplies the loss model (the quality map's "
                 "per-link PRR); remove LossModel()/GlobalLossRate() and "
                 "compose extra degradation via LinkLayerConfig.faults");
    TD_CHECK_MSG(shared_network_ == nullptr,
                 "LinkLayer() is incompatible with a shared Network(): the "
                 "retry policy, unicast observer and loss model belong to "
                 "the experiment's own network");
    TD_CHECK_MSG(!(link_layer_->aging && dynamics_),
                 "LinkLayer route aging is incompatible with Dynamics(): "
                 "churn repair and aging would both rewire the same tree");
  }

  // Scenario.
  TD_CHECK(scenario_source_ != ScenarioSource::kNone);
  switch (scenario_source_) {
    case ScenarioSource::kExternal:
      exp.scenario_ = external_scenario_;
      break;
    case ScenarioSource::kSynthetic:
      exp.owned_scenario_ = std::make_unique<td::Scenario>(
          MakeSyntheticScenario(scenario_seed_, num_sensors_));
      exp.scenario_ = exp.owned_scenario_.get();
      break;
    case ScenarioSource::kLab:
      exp.owned_scenario_ =
          std::make_unique<td::Scenario>(MakeLabScenario(scenario_seed_));
      exp.scenario_ = exp.owned_scenario_.get();
      break;
    case ScenarioSource::kNone:
      break;
  }

  // Link layer: quality-aware topology mutates rings and tree, so the
  // experiment needs its own scenario copy (cloned before dynamics so both
  // drive the same copy). The quality map is built against the copy's
  // deployment and seeded from the config seed alone -- link quality is a
  // property of the deployment, persistent across Monte Carlo trials.
  if (link_layer_) {
    if (exp.owned_scenario_ == nullptr) {
      exp.owned_scenario_ = std::make_unique<td::Scenario>(*exp.scenario_);
      exp.scenario_ = exp.owned_scenario_.get();
    }
    td::Scenario& mut = *exp.owned_scenario_;
    const LinkLayerConfig& ll = *link_layer_;
    exp.link_quality_ = std::make_shared<const LinkQualityMap>(
        &mut.deployment, &mut.connectivity, ll.quality, ll.seed);
    const LinkQualityMap& qm = *exp.link_quality_;
    if (ll.min_ring_prr > 0.0) {
      mut.rings = Rings::Build(
          mut.connectivity, mut.deployment.base(),
          std::vector<bool>(mut.connectivity.num_nodes(), true),
          [&qm, &ll](NodeId from, NodeId to) {
            return qm.Prr(from, to) >= ll.min_ring_prr;
          });
    }
    if (ll.etx_parents) {
      mut.tree = BuildEtxTree(mut.connectivity, mut.rings,
                              [&qm](NodeId child, NodeId parent) {
                                return qm.LinkEtx(child, parent);
                              });
    } else if (ll.min_ring_prr > 0.0) {
      // Rings changed under hop-count routing too: rebuild the optimized
      // tree over them so both sweep arms route over the same rings.
      Rng rng(Hash64(ll.seed, 0x7ee5eedULL));
      mut.tree = BuildOptimizedTree(mut.connectivity, mut.rings, &rng);
    }
  }

  // Dynamics: repairs mutate the scenario, so the experiment needs its own
  // copy (shared external scenarios stay pristine; RunTrials hands every
  // trial the same resolved scenario and each trial clones it here).
  if (dynamics_) {
    if (exp.owned_scenario_ == nullptr) {
      exp.owned_scenario_ = std::make_unique<td::Scenario>(*exp.scenario_);
      exp.scenario_ = exp.owned_scenario_.get();
    }
    DynamicsConfig config = *dynamics_;
    if (config.horizon == 0) config.horizon = warmup_ + epochs_;
    // Stream seed from the per-trial network seed: bit-identical for any
    // RunTrials thread count, different per trial.
    exp.dynamics_ = std::make_shared<DynamicScenario>(
        exp.owned_scenario_.get(), config, Hash64(network_seed_, config.seed));
  }
  const td::Scenario& sc = *exp.scenario_;

  // Network.
  if (shared_network_) {
    exp.network_ = shared_network_;
  } else {
    std::shared_ptr<td::LossModel> loss = loss_;
    if (loss_factory_) {
      TD_CHECK(loss == nullptr);
      loss = loss_factory_(sc);
    }
    if (link_layer_) {
      // The quality map's PRR is the loss model; scripted faults overlay
      // it the same way every other degradation composes: MaxLoss.
      loss = std::make_shared<LinkQualityLoss>(exp.link_quality_);
      if (!link_layer_->faults.empty()) {
        loss = std::make_shared<MaxLoss>(
            std::move(loss), std::make_shared<LinkFaultInjector>(
                                 &sc.deployment, link_layer_->faults));
      }
    }
    if (loss == nullptr) loss = std::make_shared<GlobalLoss>(0.0);
    if (dynamics_ && dynamics_->bursty) {
      // Gilbert-Elliott bursts overlay the static model; per-trial seed so
      // burst patterns differ across trials yet stay schedule-independent.
      loss = std::make_shared<MaxLoss>(
          std::move(loss),
          std::make_shared<GilbertElliottLoss>(
              *dynamics_->bursty, Hash64(network_seed_, 0x6e11b0acULL)));
    }
    if (exp.dynamics_) exp.dynamics_->SetBaseLoss(loss);
    exp.network_ = std::make_shared<td::Network>(
        &sc.deployment, &sc.connectivity, std::move(loss), network_seed_);
  }
  if (link_layer_) {
    // Install the retry policy only when it changes anything: a 1-attempt,
    // ack-free policy leaves DeliverWithRetries on its legacy per-call
    // budget, keeping the experiment draw-for-draw identical to one
    // without LinkLayer() (the bit-identity pin in tests/link_test.cc).
    const RetryPolicy& rp = link_layer_->retry;
    if (rp.max_attempts > 1 || rp.ack_loss) exp.network_->SetRetryPolicy(rp);
    if (link_layer_->aging) {
      exp.route_ager_ = std::make_unique<RouteAger>(
          *link_layer_->aging, exp.owned_scenario_.get());
      exp.network_->SetLinkObserver(exp.route_ager_.get());
    }
  }

  // Telemetry: the sink hangs off this experiment's own network (hot
  // hooks) and binds node -> ring level for the per-ring series; repairs
  // rebind in StepEpoch.
  if (telemetry_) {
    exp.telemetry_ = std::make_shared<obs::TelemetrySink>(*telemetry_);
    std::vector<int32_t> levels(sc.rings.num_nodes());
    for (size_t v = 0; v < levels.size(); ++v) {
      levels[v] = sc.rings.level(static_cast<NodeId>(v));
    }
    exp.telemetry_->BindTopology(std::move(levels));
    exp.network_->SetTelemetry(exp.telemetry_.get());
  }

  // The sensors every default ground truth ranges over.
  std::vector<NodeId> sensors;
  for (NodeId v = 0; v < sc.deployment.size(); ++v) {
    if (sc.tree.InTree(v) && v != sc.base()) sensors.push_back(v);
  }
  exp.population_ = static_cast<double>(sensors.size());
  TD_CHECK_GT(sensors.size(), 0u);

  // Root capture resolves at the facade: an explicit CaptureRootState()
  // request or any windowed query flips the engine option, and MakeEngine
  // enables capture at construction -- nobody pokes the engine afterwards.
  EngineOptions engine_options = options_;
  if (capture_root_state_) engine_options.capture_root_state = true;

  auto install = [&]<typename A>(std::shared_ptr<A> aggregate) {
    exp.engine_ = MakeEngine(strategy_, sc, exp.network_, aggregate.get(),
                             engine_options, core_);
    exp.aggregate_ = std::move(aggregate);
  };

  exp.truth_ = truth_;
  // Sensors the default ground truths range over at epoch e. Static runs
  // use the fixed in-tree set; under dynamics only the sensors that are up
  // (alive and awake) at e count -- a powered-down node produces no
  // reading, so it belongs in neither the answer nor the truth. IsNodeUp
  // is a pure function of the precomputed event stream, safe to evaluate
  // after the run and from RunTrials workers.
  using SensorList = std::shared_ptr<const std::vector<NodeId>>;
  std::function<SensorList(uint32_t)> sensors_at;
  if (exp.dynamics_) {
    std::shared_ptr<DynamicScenario> dyn = exp.dynamics_;
    sensors_at = [dyn, sensors](uint32_t e) {
      auto up = std::make_shared<std::vector<NodeId>>();
      up->reserve(sensors.size());
      for (NodeId v : sensors) {
        if (dyn->IsNodeUp(v, e)) up->push_back(v);
      }
      return SensorList(std::move(up));
    };
  } else {
    // The static set never changes: hand out the same list every epoch.
    SensorList fixed = std::make_shared<const std::vector<NodeId>>(sensors);
    sensors_at = [fixed](uint32_t) { return fixed; };
  }
  if (queries_.empty() && kind_ == AggregateKind::kFrequentItems) {
    TD_CHECK(items_ != nullptr);
    std::shared_ptr<PrecisionGradient> gradient = gradient_;
    if (gradient == nullptr) {
      double d = DominationFactor(ComputeHeightHistogram(sc.tree));
      if (d <= 1.05) d = 1.1;  // the Lemma 3 constant needs d > 1
      gradient = std::make_shared<MinTotalLoadGradient>(freq_params_.eps, d);
    }
    auto agg = std::make_shared<FrequentItemsAggregate>(
        items_, &sc.tree, gradient, freq_params_);
    install(std::move(agg));
    // No scalar ground truth (and no per-query series) unless the caller
    // provides one.
  } else {
    // Resolve the query set; Aggregate(kind) is sugar for a one-query set.
    std::vector<td::Query> queries = queries_;
    const bool lowered_single = queries.empty();
    if (lowered_single) {
      td::Query q;
      q.kind = kind_;
      queries.push_back(std::move(q));
    }
    for (td::Query& q : queries) {
      q = api_internal::ResolveQuery(std::move(q), reading_, real_reading_,
                                     sketch_bitmaps_);
      // Spatial group-by resolves against the scenario (deployment
      // bounding box, hop rings): the resolved partition rides on the
      // query so VisitQueryAggregate wraps its aggregate per group.
      if (q.group_by.active()) {
        q.resolved_groups = std::make_shared<const RegionGrid>(
            q.group_by, sc.deployment, sc.rings, sensors);
        exp.any_group_ = true;
      }
    }
    TD_CHECK_MSG(primary_ < queries.size(),
                 "PrimaryQuery(index) is out of range of the AddQuery list");

    exp.primary_ = primary_;
    for (const td::Query& q : queries) {
      exp.query_names_.push_back(q.name);
      // A grouped query's global truth ranges over the sensors its
      // partition covers (grid/ring partitions cover every sensor;
      // explicit cohorts may not), matching what the grouped payloads
      // aggregate.
      api_internal::SensorListFn truth_sensors =
          q.resolved_groups != nullptr
              ? api_internal::FilterSensorsByGroup(sensors_at,
                                                   q.resolved_groups, -1)
              : sensors_at;
      exp.query_truths_.push_back(
          api_internal::MakeDefaultQueryTruth(q, truth_sensors));
    }
    // Builder-level Truth() overrides the primary query's default.
    if (truth_) exp.query_truths_[primary_] = truth_;
    exp.truth_ = exp.query_truths_[primary_];

    // Windowed and grouped queries imply root capture; decided before the
    // engine is built so MakeEngine can enable it at construction.
    for (const td::Query& q : queries) {
      if (q.window.windowed()) exp.any_window_ = true;
    }
    if (exp.any_window_ || exp.any_group_) {
      engine_options.capture_root_state = true;
      exp.query_set_engine_ = !lowered_single;
    }

    if (lowered_single) {
      // A one-query set lowers to the dedicated single-aggregate engine:
      // bit-identical to the QuerySetAggregate path (pinned by
      // queryset_test) without its per-operation type-erasure hop. The
      // same VisitQueryAggregate dispatch builds both, so the two paths
      // cannot drift apart.
      api_internal::VisitQueryAggregate(queries.front(), [&](auto agg) {
        install(std::make_shared<std::decay_t<decltype(agg)>>(
            std::move(agg)));
      });
    } else {
      std::vector<std::unique_ptr<QueryOps>> ops;
      ops.reserve(queries.size());
      for (const td::Query& q : queries) {
        ops.push_back(api_internal::MakeQueryOps(q));
      }
      install(
          std::make_shared<QuerySetAggregate>(std::move(ops), primary_));
    }

    // Windowed queries: base-station windows over the engine's per-epoch
    // root state, plus exact windowed-truth re-aggregators. Which root
    // sides exist is a strategy property: tree engines surface the exact
    // partial, synopsis diffusion the fused synopsis, Tributary-Delta
    // both. Capture stays off entirely for windowless experiments.
    if (exp.any_window_) {
      const WindowSides sides = RootStateSides(strategy_);
      exp.window_states_.resize(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        const td::Query& q = queries[i];
        if (!q.window.windowed()) continue;
        Experiment::QueryWindowState& ws = exp.window_states_[i];
        // A fresh QueryOps instance: every operation a window uses is a
        // pure function of the resolved query's parameters, so it behaves
        // bit-identically to the engine's own aggregate.
        ws.window = std::make_unique<QueryWindow>(
            api_internal::MakeQueryOps(q), q.window, sides);
        // A builder-level Truth() overrides the primary query's truth the
        // same way a per-query truth does: the default kind-derived inputs
        // could contradict it, so its windowed truth series stays empty.
        if (i == primary_ && truth_) continue;
        WindowTruthInputFn inputs =
            api_internal::MakeWindowTruthInputs(q, sensors_at);
        if (inputs) {
          ws.truth = std::make_unique<WindowTruth>(
              q.kind, q.window, q.quantile_p, std::move(inputs));
        }
      }
    }

    // Grouped queries: a per-group evaluator over the same captured root
    // state the windows read, plus one exact default truth per region.
    // The evaluator's aggregate comes from the same VisitQueryAggregate
    // dispatch as the engine's, so the opaque payloads line up exactly.
    if (exp.any_group_) {
      exp.group_states_.resize(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        const td::Query& q = queries[i];
        if (q.resolved_groups == nullptr) continue;
        Experiment::QueryGroupState& gs = exp.group_states_[i];
        gs.eval = api_internal::MakeGroupEval(q);
        gs.names = q.resolved_groups->names();
        // A caller-supplied truth (per-query or builder-level on the
        // primary) says nothing about the regions, so the per-group truth
        // series stays empty -- mirroring the windowed-truth rule.
        if (q.truth) continue;
        if (i == primary_ && truth_) continue;
        gs.truths.reserve(q.resolved_groups->num_groups());
        for (int g = 0; g < q.resolved_groups->num_groups(); ++g) {
          gs.truths.push_back(api_internal::MakeDefaultQueryTruth(
              q, api_internal::FilterSensorsByGroup(sensors_at,
                                                    q.resolved_groups, g)));
        }
      }
    }
  }

  exp.warmup_ = warmup_;
  exp.epochs_ = epochs_;
  return exp;
}

RunResult Experiment::Builder::Run() { return Build().Run(); }

SweepResult Experiment::Builder::RunTrials() {
  TD_CHECK_GT(trials_, 0u);
  TD_CHECK_MSG(shared_network_ == nullptr,
               "RunTrials() is incompatible with a shared Network(): each "
               "trial needs its own RNG stream to stay reproducible");

  // Resolve the scenario and loss model once; both are immutable during
  // aggregation, so all trials share them read-only. Every trial then
  // builds its own aggregate, engine and network from a Builder copy.
  Builder proto = *this;
  std::unique_ptr<td::Scenario> owned_scenario;
  if (scenario_source_ == ScenarioSource::kSynthetic) {
    owned_scenario = std::make_unique<td::Scenario>(
        MakeSyntheticScenario(scenario_seed_, num_sensors_));
    proto.Scenario(owned_scenario.get());
  } else if (scenario_source_ == ScenarioSource::kLab) {
    owned_scenario =
        std::make_unique<td::Scenario>(MakeLabScenario(scenario_seed_));
    proto.Scenario(owned_scenario.get());
  }
  if (loss_factory_) {
    TD_CHECK(proto.external_scenario_ != nullptr);
    proto.loss_factory_ = nullptr;
    proto.loss_ = loss_factory_(*proto.external_scenario_);
  }

  const uint32_t trials = trials_;
  const uint64_t base_seed = network_seed_;
  unsigned workers =
      threads_ != 0 ? threads_
                    : std::max(1u, std::thread::hardware_concurrency());
  if (workers > trials) workers = trials;

  std::vector<RunResult> results(trials);
  std::vector<RunningStat> per_trial_estimates(trials);
  std::atomic<uint32_t> next{0};
  auto run_trials = [&]() {
    for (;;) {
      const uint32_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= trials) return;
      Builder b = proto;
      // Deterministic per-trial seed: a pure function of (base seed, t),
      // independent of which worker picks the trial up.
      b.NetworkSeed(Hash64(t, base_seed));
      results[t] = b.Run();
      for (const EpochResult& e : results[t].epochs) {
        per_trial_estimates[t].Add(e.value);
      }
    }
  };

  if (workers <= 1) {
    run_trials();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(run_trials);
    for (std::thread& th : pool) th.join();
  }

  // Summaries merge in trial order after the barrier, so the result is
  // bit-identical for any thread count or completion schedule.
  SweepResult out;
  for (uint32_t t = 0; t < trials; ++t) {
    out.rms.Add(results[t].rms);
    out.bytes_per_epoch.Add(results[t].bytes_per_epoch);
    out.estimates.Merge(per_trial_estimates[t]);
    // Per-trial sinks are the telemetry "shards": merged here, in trial
    // order, so the merged series matches for any thread count.
    if (results[t].telemetry.enabled) {
      out.telemetry.Merge(results[t].telemetry);
    }
  }
  out.trials = std::move(results);
  return out;
}

// -------------------------------------------------------------- Experiment

EpochResult Experiment::StepEpoch(uint32_t epoch) {
  // Installed even when null (it restores on exit): TD_PROFILE_SCOPE and
  // CountEvent in the layers below read this thread-local.
  obs::ScopedSink obs_scope(telemetry_.get());
  if (telemetry_) telemetry_->set_epoch(epoch);
  if (dynamics_) {
    EpochDynamics d = dynamics_->Advance(epoch, network_.get());
    if (d.topology_changed) {
      engine_->OnTopologyChanged();
      if (telemetry_) {
        telemetry_->Count("dynamics.repairs");
        telemetry_->Event(obs::EventKind::kTreeRepair, -1,
                          static_cast<int64_t>(dynamics_->repairs()));
        // Repairs can re-level the rings: rebind so per-ring series keep
        // tracking the repaired topology.
        std::vector<int32_t> levels(scenario_->rings.num_nodes());
        for (size_t v = 0; v < levels.size(); ++v) {
          levels[v] = scenario_->rings.level(static_cast<NodeId>(v));
        }
        telemetry_->BindTopology(std::move(levels));
      }
    }
  }
  EpochResult r = engine_->RunEpoch(epoch);
  if (telemetry_) {
    // Engine-adjacent observation: per-epoch deltas of the engines'
    // cumulative counters, so the engines themselves stay telemetry-blind.
    const EngineStats st = engine_->stats();
    if (st.decisions > obs_prev_stats_.decisions) {
      telemetry_->Count("td.decisions",
                        st.decisions - obs_prev_stats_.decisions);
    }
    if (st.expansions > obs_prev_stats_.expansions) {
      const uint64_t d = st.expansions - obs_prev_stats_.expansions;
      telemetry_->Count("td.expansions", d);
      telemetry_->Event(obs::EventKind::kModeSwitch, -1,
                        static_cast<int64_t>(d));
    }
    if (st.shrinks > obs_prev_stats_.shrinks) {
      const uint64_t d = st.shrinks - obs_prev_stats_.shrinks;
      telemetry_->Count("td.shrinks", d);
      telemetry_->Event(obs::EventKind::kModeSwitch, -1,
                        -static_cast<int64_t>(d));
    }
    obs_prev_stats_ = st;
    const uint64_t reproc = engine_->nodes_reprocessed();
    if (reproc > obs_prev_reprocessed_) {
      telemetry_->Count("soa.nodes_reprocessed",
                        reproc - obs_prev_reprocessed_);
      obs_prev_reprocessed_ = reproc;
    }
  }
  if (route_ager_ != nullptr) {
    const size_t rerouted = route_ager_->EndEpoch(epoch);
    if (rerouted > 0) {
      // Re-parenting control traffic, charged to the base station exactly
      // like the dynamics tier charges its churn repairs.
      network_->CountTransmission(scenario_->base(), 8 + 2 * rerouted);
      engine_->OnTopologyChanged();
      if (telemetry_) {
        telemetry_->Count("link.reroutes", rerouted);
        telemetry_->Event(obs::EventKind::kReroute,
                          static_cast<int32_t>(scenario_->base()),
                          static_cast<int64_t>(rerouted));
      }
    }
  }
  if (any_window_ || any_group_) {
    // Both consumers read the same captured root state: fetched once.
    const RootState rs = engine_->root_state();
    // Query-set engines hold one payload per member query; this slices
    // query i's sides out (either may be null, a strategy property).
    auto query_sides = [&](size_t i) {
      const void* p = rs.tree_partial;
      const void* s = rs.synopsis;
      if (query_set_engine_) {
        p = p == nullptr
                ? nullptr
                : static_cast<const QuerySetTreePartial*>(p)->q[i].get();
        s = s == nullptr
                ? nullptr
                : static_cast<const QuerySetSynopsis*>(s)->q[i].get();
      }
      return std::pair<const void*, const void*>(p, s);
    };
    if (any_window_) {
      // Feed every windowed query its slice of the captured root state;
      // one window tick per StepEpoch call (warmup included -- standing
      // queries don't reset their history when measurement starts).
      const size_t nq = window_states_.size();
      r.windowed_values.resize(nq);
      for (size_t i = 0; i < nq; ++i) {
        QueryWindowState& ws = window_states_[i];
        if (ws.window == nullptr) {
          // A windowless query behaves like a width-1 window: report the
          // instantaneous answer.
          r.windowed_values[i] =
              r.query_values.size() == nq ? r.query_values[i] : r.value;
          continue;
        }
        auto [p, s] = query_sides(i);
        r.windowed_values[i] = ws.window->Observe(p, s);
        if (ws.truth != nullptr) ws.truths.push_back(ws.truth->Observe(epoch));
      }
    }
    if (any_group_) {
      // Slice per-group estimates out of each grouped query's payloads;
      // ungrouped queries keep an empty inner vector.
      const size_t nq = group_states_.size();
      r.group_values.resize(nq);
      for (size_t i = 0; i < nq; ++i) {
        QueryGroupState& gs = group_states_[i];
        if (gs.eval == nullptr) continue;
        auto [p, s] = query_sides(i);
        gs.eval->Evaluate(p, s, &r.group_values[i]);
      }
    }
  }
  if (telemetry_ && telemetry_->config().node_energy_series) {
    // One per-node radio-bytes row per epoch (delta of the cumulative
    // node_energy tally), the time-to-first-death input.
    const size_t n = network_->size();
    if (obs_node_bytes_prev_.size() != n) obs_node_bytes_prev_.assign(n, 0);
    std::vector<uint64_t> row(n);
    for (size_t v = 0; v < n; ++v) {
      const uint64_t b = network_->node_energy(static_cast<NodeId>(v)).bytes;
      row[v] = b - obs_node_bytes_prev_[v];
      obs_node_bytes_prev_[v] = b;
    }
    telemetry_->AppendNodeEnergy(std::move(row));
  }
  return r;
}

RunResult Experiment::Run() {
  TD_CHECK_GT(epochs_, 0u);
  // Warmup results are discarded one by one (no batch accumulation).
  for (uint32_t e = 0; e < warmup_; ++e) StepEpoch(e);
  if (warmup_ > 0) {
    network_->ResetEnergy();
    if (telemetry_) {
      // Measured telemetry starts bitwise-aligned with the reset legacy
      // counters (warmup traffic belongs to neither).
      telemetry_->Reset();
      std::fill(obs_node_bytes_prev_.begin(), obs_node_bytes_prev_.end(), 0);
    }
  }
  const uint64_t reprocessed_before = engine_->nodes_reprocessed();

  RunResult out;
  out.core = engine_->core();
  out.epochs.reserve(epochs_);
  for (uint32_t e = warmup_; e < warmup_ + epochs_; ++e) {
    out.epochs.push_back(StepEpoch(e));
  }
  out.nodes_reprocessed_per_epoch =
      static_cast<double>(engine_->nodes_reprocessed() - reprocessed_before) /
      static_cast<double>(epochs_);
  out.contributing.reserve(out.epochs.size());
  for (const EpochResult& e : out.epochs) {
    out.contributing.push_back(static_cast<double>(e.true_contributing) /
                               population_);
  }

  // Per-query series. Query-set engines report every member's answer in
  // EpochResult.query_values; lowered one-query sets report through
  // EpochResult.value only.
  const size_t nq = query_names_.size();
  if (nq > 0) {
    out.queries.resize(nq);
    for (size_t i = 0; i < nq; ++i) out.queries[i].name = query_names_[i];
    for (const EpochResult& e : out.epochs) {
      // Lowered one-query sets leave query_values empty; any other size
      // mismatch would be an engine bug, not a case to paper over.
      TD_DCHECK(e.query_values.empty() || e.query_values.size() == nq);
      for (size_t i = 0; i < nq; ++i) {
        out.queries[i].estimates.push_back(
            e.query_values.size() == nq ? e.query_values[i] : e.value);
      }
    }
    for (size_t i = 0; i < nq; ++i) {
      if (!query_truths_[i]) continue;
      QuerySeries& series = out.queries[i];
      series.truths.reserve(out.epochs.size());
      for (const EpochResult& e : out.epochs) {
        series.truths.push_back(query_truths_[i](e.epoch));
      }
      series.rms = RelativeRmsError(series.estimates, series.truths);
    }
    // Windowed series: the measured tail of each window's value stream
    // (windows also ran during warmup; those values are discarded along
    // with the warmup epochs, but the window state they built carries in).
    for (size_t i = 0; i < window_states_.size(); ++i) {
      QueryWindowState& ws = window_states_[i];
      if (ws.window == nullptr) continue;
      QuerySeries& series = out.queries[i];
      series.windowed_estimates.reserve(out.epochs.size());
      for (const EpochResult& e : out.epochs) {
        TD_DCHECK(e.windowed_values.size() == nq);
        series.windowed_estimates.push_back(e.windowed_values[i]);
      }
      series.window_merges = ws.window->merges();
      if (ws.truth != nullptr) {
        TD_DCHECK(ws.truths.size() >= out.epochs.size());
        series.windowed_truths.assign(ws.truths.end() - out.epochs.size(),
                                      ws.truths.end());
        series.windowed_rms = RelativeRmsError(series.windowed_estimates,
                                               series.windowed_truths);
      }
    }
    // Grouped series: per-region estimate streams sliced by StepEpoch,
    // with per-region exact truths when no caller override suppressed
    // them (group_estimates[g][e] indexing: region-major for plotting).
    for (size_t i = 0; i < group_states_.size(); ++i) {
      QueryGroupState& gs = group_states_[i];
      if (gs.eval == nullptr) continue;
      QuerySeries& series = out.queries[i];
      const size_t ng = gs.eval->num_groups();
      series.group_names = gs.names;
      series.group_estimates.assign(ng, {});
      for (size_t g = 0; g < ng; ++g) {
        series.group_estimates[g].reserve(out.epochs.size());
      }
      for (const EpochResult& e : out.epochs) {
        TD_DCHECK(e.group_values.size() == nq &&
                  e.group_values[i].size() == ng);
        for (size_t g = 0; g < ng; ++g) {
          series.group_estimates[g].push_back(e.group_values[i][g]);
        }
      }
      if (gs.truths.empty()) continue;
      TD_DCHECK(gs.truths.size() == ng);
      series.group_truths.assign(ng, {});
      series.group_rms.resize(ng);
      for (size_t g = 0; g < ng; ++g) {
        series.group_truths[g].reserve(out.epochs.size());
        for (const EpochResult& e : out.epochs) {
          series.group_truths[g].push_back(gs.truths[g](e.epoch));
        }
        series.group_rms[g] = RelativeRmsError(series.group_estimates[g],
                                               series.group_truths[g]);
      }
    }
    // truth_ aliases the primary query's truth, so the top-level series
    // is a copy, not a second evaluation pass.
    out.truths = out.queries[primary_].truths;
    out.rms = out.queries[primary_].rms;
  } else if (truth_) {
    // FrequentItems with a caller-supplied scalar truth.
    out.truths.reserve(out.epochs.size());
    for (const EpochResult& e : out.epochs) {
      out.truths.push_back(truth_(e.epoch));
    }
    out.rms = RelativeRmsError(out.estimates(), out.truths);
  }

  out.energy = network_->total_energy();
  out.bytes_per_epoch =
      static_cast<double>(out.energy.bytes) / static_cast<double>(epochs_);
  // Every physical transmission (retransmissions included) carries one
  // fixed header; the rest of the byte tally is payload. With a query set
  // the header side stays flat as queries are added -- the amortization the
  // multi-query API exists to exploit.
  out.header_bytes_per_epoch =
      static_cast<double>(out.energy.transmissions * kMessageHeaderBytes) /
      static_cast<double>(epochs_);
  out.payload_bytes_per_epoch =
      out.bytes_per_epoch - out.header_bytes_per_epoch;
  out.final_delta_size = engine_->delta_size();
  out.stats = engine_->stats();
  if (dynamics_) out.topology_repairs = dynamics_->repairs();
  const RetryStats& rs = network_->retry_stats();
  out.delivery_ratio = rs.delivery_ratio();
  out.attempts_per_epoch =
      static_cast<double>(rs.attempts) / static_cast<double>(epochs_);
  out.retry_histogram = rs.by_attempts;
  if (route_ager_) out.route_reroutes = route_ager_->total_reroutes();
  if (telemetry_) {
    // Derived per-run gauges land next to the raw series, then the sink is
    // drained into the result.
    obs::MetricRegistry& reg = telemetry_->metrics();
    reg.GetGauge("run.bytes_per_epoch")->Set(out.bytes_per_epoch);
    reg.GetGauge("run.header_bytes_per_epoch")
        ->Set(out.header_bytes_per_epoch);
    reg.GetGauge("run.payload_bytes_per_epoch")
        ->Set(out.payload_bytes_per_epoch);
    out.telemetry = telemetry_->Summarize();
    out.node_energy.reserve(network_->size());
    for (size_t v = 0; v < network_->size(); ++v) {
      out.node_energy.push_back(network_->node_energy(static_cast<NodeId>(v)));
    }
  }
  return out;
}

}  // namespace td
