// The first-class query descriptor of the multi-query facade: what one
// standing aggregate query over the sensor field looks like to the
// Experiment builder. A query set is just a vector of these; the builder
// turns each into type-erased QueryOps (agg/query_set.h) and runs the whole
// set through one engine, sharing message headers and radio energy.
//
//   RunResult r = Experiment::Builder()
//                     .Synthetic(42)
//                     .AddQuery({.kind = AggregateKind::kAvg})
//                     .AddQuery({.kind = AggregateKind::kMax})
//                     .AddQuery({.kind = AggregateKind::kQuantile,
//                                .quantile_p = 0.9})
//                     .Reading(light)
//                     .Strategy(Strategy::kTributaryDelta)
//                     .Epochs(60)
//                     .Run();
//   // r.queries[i].{name, estimates, truths, rms} per query.
#ifndef TD_API_QUERY_H_
#define TD_API_QUERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "agg/query_set.h"
#include "api/strategy.h"
#include "quant/group_by.h"
#include "quant/qdigest_aggregate.h"
#include "quant/region_grid.h"
#include "util/check.h"
#include "window/window.h"
#include "window/window_truth.h"

namespace td {

/// One standing query. Fields left at their zero values inherit the
/// builder-level defaults (Reading / RealReading / SketchBitmaps) or the
/// aggregate kind's own defaults; see Experiment::Builder::AddQuery.
struct Query {
  /// Which aggregate to compute. Every registry kind except
  /// kFrequentItems (whose result is not a scalar) can join a query set.
  AggregateKind kind = AggregateKind::kCount;

  /// Display name used in RunResult.queries[]; empty picks
  /// AggregateKindName(kind).
  std::string name;

  /// Per-query readings; unset falls back to the builder-level functions
  /// (a per-query integer Reading also serves as the real reading for
  /// Min/Max/Quantile, as at the builder level).
  UintReadingFn reading;
  RealReadingFn real_reading;

  /// FM sketch bitmaps (Count/Sum/Avg/UniqueCount); 0 inherits
  /// SketchBitmaps() or the sketch default.
  int sketch_bitmaps = 0;

  /// Synopsis seed; 0 picks the kind's default. Two same-kind queries with
  /// default seeds build identical synopses -- give them distinct seeds to
  /// decorrelate their sketch error.
  uint64_t sketch_seed = 0;

  /// kQuantile / kQuantileQd: which quantile (median by default); the
  /// uniform sample capacity applies to kQuantile only
  /// (0 -> kDefaultQuantileSampleSize). kQuantileQd requires a strict
  /// p in (0, 1).
  double quantile_p = 0.5;
  size_t sample_size = 0;

  /// q-digest kinds (kQuantileQd / kHistogramQd / kRangeCountQd) only:
  /// value domain [0, 2^digest_bits) (0 -> 16 bits) and compression
  /// parameter k (0 -> 32; rank error <= digest_bits / digest_k).
  int digest_bits = 0;
  int digest_k = 0;

  /// kRangeCountQd only: inclusive value range; both 0 means the full
  /// domain [0, 2^digest_bits).
  uint64_t range_lo = 0;
  uint64_t range_hi = 0;

  /// kHistogramQd only: equal-width buckets over the domain; must be a
  /// power of two (0 -> 8).
  int histogram_buckets = 0;

  /// Spatial group-by (src/quant/): partitions the sensors into regions
  /// and carries one payload per region, so the run reports per-group
  /// estimates/truths/rms in QuerySeries alongside the global scalar.
  /// Inactive by default. Resolved against the scenario by the Experiment
  /// builder into `resolved_groups`.
  RegionSpec group_by;
  std::shared_ptr<const RegionGrid> resolved_groups;

  /// Per-epoch ground truth override; unset derives the exact truth from
  /// the kind and reading function.
  std::function<double(uint32_t)> truth;

  /// Streaming window over the query's per-epoch answers (window/): the
  /// base station re-merges each epoch's root partial/synopsis, so a
  /// windowed query reports BOTH the instantaneous series and a windowed
  /// series (QuerySeries.windowed_estimates) at zero extra radio bytes.
  /// Default kNone = instantaneous only; kEwma queries default to
  /// WindowSpec::Decayed(kDefaultEwmaAlpha).
  WindowSpec window;

  /// Fluent form for call sites that prefer chaining over designated
  /// initializers: Query{.kind = kMax}.Window(WindowSpec::Sliding(24)).
  Query&& Window(WindowSpec spec) && {
    window = spec;
    return std::move(*this);
  }
  Query& Window(WindowSpec spec) & {
    window = spec;
    return *this;
  }

  /// Fluent form of the spatial group-by:
  /// Query{.kind = kSum}.GroupBy(RegionSpec::Grid(2, 2)).
  Query&& GroupBy(RegionSpec spec) && {
    group_by = std::move(spec);
    return std::move(*this);
  }
  Query& GroupBy(RegionSpec spec) & {
    group_by = std::move(spec);
    return *this;
  }
};

namespace api_internal {

/// Hands out the list of sensors that are up (alive and awake) at an
/// epoch; static experiments return one fixed list (see experiment.cc).
using SensorListFn =
    std::function<std::shared_ptr<const std::vector<NodeId>>(uint32_t)>;

/// Fills a query's unset fields from the builder-level defaults and fails
/// fast (TD_CHECK_MSG) on missing requirements, e.g. a Sum query with no
/// integer reading anywhere.
Query ResolveQuery(Query q, const UintReadingFn& builder_reading,
                   const RealReadingFn& builder_real_reading,
                   int builder_sketch_bitmaps);

/// Constructs the concrete aggregate a RESOLVED query describes and
/// invokes `f` with it by value. The one kind-to-constructor dispatch in
/// the codebase: both the builder's lowered single-aggregate path and
/// MakeQueryOps go through it, so the two can never drift apart and break
/// the "Aggregate(kind) is bit-identical to a one-query set" contract.
/// kFrequentItems (rejected by ResolveQuery) aborts.
/// The q-digest parameters a resolved query describes.
inline QDigestParams QueryDigestParams(const Query& q) {
  QDigestParams params;
  params.bits = q.digest_bits;
  params.k = q.digest_k;
  params.quantile_p = q.quantile_p;
  params.range_lo = q.range_lo;
  params.range_hi = q.range_hi;
  params.histogram_buckets = q.histogram_buckets;
  return params;
}

template <typename F>
auto VisitQueryAggregate(const Query& q, F&& f) {
  // Grouped queries (resolved_groups set by Experiment::Builder::Build)
  // wrap the kind's aggregate in a GroupByAggregate carrying one payload
  // per region; ungrouped queries pass the aggregate through untouched.
  auto g = [&](auto agg) {
    if (q.resolved_groups != nullptr) {
      return f(GroupByAggregate<decltype(agg)>(q.resolved_groups,
                                               std::move(agg)));
    }
    return f(std::move(agg));
  };
  switch (q.kind) {
    case AggregateKind::kCount:
      return g(CountAggregate(q.sketch_bitmaps, q.sketch_seed));
    case AggregateKind::kSum:
      return g(SumAggregate(q.reading, q.sketch_bitmaps, q.sketch_seed));
    case AggregateKind::kAvg:
      return g(AverageAggregate(q.reading, q.sketch_bitmaps, q.sketch_seed));
    case AggregateKind::kEwma:
      // Radio-side an EWMA query IS an average (invertible Sum/Count
      // pair); the decay happens in the window layer at the base station.
      return g(AverageAggregate(q.reading, q.sketch_bitmaps, q.sketch_seed));
    case AggregateKind::kMin:
      return g(ExtremumAggregate(ExtremumAggregate::Kind::kMin,
                                 q.real_reading));
    case AggregateKind::kMax:
      return g(ExtremumAggregate(ExtremumAggregate::Kind::kMax,
                                 q.real_reading));
    case AggregateKind::kUniqueCount:
      return g(UniqueCountAggregate(q.reading, q.sketch_bitmaps,
                                    q.sketch_seed));
    case AggregateKind::kQuantile:
      return g(QuantileAggregate(q.real_reading, q.quantile_p,
                                 q.sample_size, q.sketch_seed));
    case AggregateKind::kQuantileQd:
      return g(QDigestAggregate(q.reading, QDigestAggregate::Answer::kQuantile,
                                QueryDigestParams(q)));
    case AggregateKind::kHistogramQd:
      return g(QDigestAggregate(q.reading,
                                QDigestAggregate::Answer::kHistogramMode,
                                QueryDigestParams(q)));
    case AggregateKind::kRangeCountQd:
      return g(QDigestAggregate(q.reading,
                                QDigestAggregate::Answer::kRangeCount,
                                QueryDigestParams(q)));
    case AggregateKind::kFrequentItems:
      break;
  }
  internal::CheckFailedMsg(__FILE__, __LINE__, "VisitQueryAggregate",
                           "aggregate kind has no query-set aggregate");
}

/// Builds the type-erased ops for one resolved query. The wrapped
/// aggregate uses the same constructor defaults (seeds, bitmaps) as the
/// single-aggregate path, so a one-query set is bit-identical to it.
std::unique_ptr<QueryOps> MakeQueryOps(const Query& q);

/// The exact ground truth a resolved query defaults to, recomputed over
/// the sensors up at each epoch; null only for callers that override.
std::function<double(uint32_t)> MakeDefaultQueryTruth(const Query& q,
                                                      SensorListFn sensors_at);

/// Per-epoch exact truth INPUTS of a resolved query, for re-aggregation
/// into windowed ground truth (window/window_truth.h). Null when the
/// query's truth was overridden by the caller: the default inputs could
/// contradict the override, so the windowed truth series stays empty.
WindowTruthInputFn MakeWindowTruthInputs(const Query& q,
                                         SensorListFn sensors_at);

/// Type-erased per-group evaluation of a grouped query's captured root
/// state (the opaque GroupByAggregate payloads): the Experiment facade
/// slices per-group estimates out of each epoch without knowing the
/// wrapped aggregate's type.
class GroupEval {
 public:
  virtual ~GroupEval() = default;
  virtual size_t num_groups() const = 0;
  /// Either side may be null (strategy-dependent; see RootStateSides).
  virtual void Evaluate(const void* tree_partial, const void* synopsis,
                        std::vector<double>* out) const = 0;
};

/// Builds the per-group evaluator for a RESOLVED query, or null for an
/// ungrouped one. The evaluator is a fresh aggregate built by the same
/// VisitQueryAggregate dispatch as the engine's own, so the payload types
/// (and every evaluation) match bit-for-bit.
std::unique_ptr<GroupEval> MakeGroupEval(const Query& q);

/// Restricts a sensor list to one group of the query's resolved partition
/// (`group` >= 0), or to all covered sensors (`group` == -1) -- the basis
/// of per-group and partition-wide default ground truths.
SensorListFn FilterSensorsByGroup(SensorListFn sensors_at,
                                  std::shared_ptr<const RegionGrid> grid,
                                  int group);

}  // namespace api_internal
}  // namespace td

#endif  // TD_API_QUERY_H_
