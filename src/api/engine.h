// The type-erased aggregation engine: one runtime interface over the three
// class templates (TreeAggregator, MultipathAggregator,
// TributaryDeltaAggregator) so benches, examples and sweeps can select a
// Strategy by value without re-wiring template plumbing per scheme.
//
// The concrete impls wrap the existing engines without touching their hot
// loops; type erasure costs one virtual dispatch per epoch (thousands of
// message simulations), which is noise. Results come back as EpochResult, a
// strategy- and aggregate-agnostic currency: numeric aggregates fill
// `value`, frequent items additionally fill `freq`.
#ifndef TD_API_ENGINE_H_
#define TD_API_ENGINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "agg/epoch_outcome.h"
#include "agg/multipath_aggregator.h"
#include "agg/query_set.h"
#include "agg/tree_aggregator.h"
#include "api/strategy.h"
#include "core/soa_multipath.h"
#include "core/soa_td.h"
#include "core/soa_tree.h"
#include "freq/freq_aggregate.h"
#include "net/network.h"
#include "td/adaptation.h"
#include "td/tributary_delta_aggregator.h"
#include "util/check.h"
#include "workload/scenario.h"

namespace td {

/// Type-erased outcome of one aggregation epoch.
struct EpochResult {
  uint32_t epoch = 0;

  /// The numeric answer (for FrequentItems: the estimated total N).
  double value = 0.0;

  /// Ground truth count of sensors accounted for in `value`.
  size_t true_contributing = 0;

  /// What the base station believes contributed (exact tree counts plus an
  /// FM estimate for delta regions).
  double reported_contributing = 0.0;

  /// Full frequent-items evaluation; empty for every other aggregate.
  FreqResult freq;

  /// Multi-query engines (QuerySetAggregate): every member query's answer,
  /// index-aligned with the query list; `value` repeats the primary
  /// query's entry. Empty for single-aggregate engines.
  std::vector<double> query_values;

  /// Filled by Experiment::StepEpoch (not by engines) when any query in
  /// the experiment carries a window: one entry per query, index-aligned
  /// with the query list -- the windowed value for windowed queries, the
  /// instantaneous answer for windowless ones (a windowless query behaves
  /// like a width-1 window). Empty when no query is windowed.
  std::vector<double> windowed_values;

  /// Filled by Experiment::StepEpoch (not by engines) when any query
  /// carries a spatial group-by (Query::GroupBy): group_values[i][g] is
  /// query i's estimate for group g, sliced from the captured root state.
  /// Ungrouped queries keep an empty inner vector. Empty when no query is
  /// grouped.
  std::vector<std::vector<double>> group_values;
};

/// Type-erased view of the base station's root aggregate state after one
/// epoch: the exact tree partial and/or the fused synopsis, as opaque
/// pointers to the engine aggregate's A::TreePartial / A::Synopsis (for
/// query-set engines: QuerySetTreePartial / QuerySetSynopsis). Which sides
/// are non-null is fixed per strategy (window/query_window.h's
/// RootStateSides) -- tree engines surface only the partial, synopsis
/// diffusion only the synopsis, Tributary-Delta both. Valid until the next
/// RunEpoch; never retransmitted, so capturing costs zero radio bytes.
///
/// Two consumers re-merge root states downstream of the engines:
/// windowed aggregation (window/) merges one engine's states ACROSS
/// epochs, and the federation tier (src/fed/) merges many gateway
/// engines' states WITHIN an epoch into a global estimate. Both lean on
/// the same contract: every registry aggregate's MergeTree / Fuse is
/// commutative and associative over exactly-representable state (integer
/// counters, bitwise-OR sketch banks, canonical min-wise samples, min /
/// max), so re-merging in any grouping or order reproduces the in-network
/// fold bit-for-bit. The root partial a tree engine exports contains no
/// base-station reading (the base holds none), which is what lets a
/// coordinator merge G gateways' roots without double-counting anything.
/// See DESIGN.md "Hierarchical federation".
struct RootState {
  const void* tree_partial = nullptr;
  const void* synopsis = nullptr;
};

/// Adaptation counters; all zeros for non-adaptive strategies.
struct EngineStats {
  size_t expansions = 0;
  size_t shrinks = 0;
  size_t decisions = 0;
};

/// Knobs shared by every strategy; fields a strategy does not use are
/// ignored (e.g. `adaptation` under kTag).
struct EngineOptions {
  /// Extra per-message tree retransmissions; -1 picks the strategy default
  /// (2 for kTagRetx, 0 otherwise).
  int tree_extra_retransmissions = -1;

  /// Base-station adaptation config (kTributaryDelta / kTdCoarse).
  AdaptationConfig adaptation;

  /// Seed for the piggybacked contributing-count sketch.
  uint64_t contrib_seed = 0x510c;

  /// See TributaryDeltaAggregator::Options::sensor_population.
  size_t sensor_population = 0;

  /// Capture the base station's root aggregate state every epoch (see
  /// Engine::root_state). This is the facade-level switch behind
  /// Experiment::Builder::CaptureRootState; MakeEngine enables capture on
  /// the freshly built engine so consumers (src/window/, src/fed/) never
  /// reach into engine internals.
  bool capture_root_state = false;
};

/// The facade every bench, example and integration test runs against.
/// Concrete instances come from MakeEngine (any Aggregate) or from
/// Experiment::Builder (the AggregateKind registry).
class Engine {
 public:
  virtual ~Engine() = default;

  /// Runs one aggregation epoch (plus, for adaptive strategies, one
  /// adaptation decision when the damper allows).
  virtual EpochResult RunEpoch(uint32_t epoch) = 0;

  /// Runs epochs [first, first + n): byte-identical to n sequential
  /// RunEpoch calls. All size-n inbox state is scratch reused across the
  /// batch -- see scratch_stats().
  std::vector<EpochResult> RunEpochs(uint32_t first, uint32_t n) {
    std::vector<EpochResult> out;
    out.reserve(n);
    for (uint32_t e = 0; e < n; ++e) out.push_back(RunEpoch(first + e));
    return out;
  }

  virtual Strategy strategy() const = 0;
  virtual Network& network() const = 0;

  /// Which engine core executes the strategy (the Builder::Core axis).
  virtual EngineCore core() const { return EngineCore::kObject; }

  /// Cumulative count of nodes whose self synopsis/partial was recomputed
  /// rather than replayed from the epoch-delta cache. Always 0 for the
  /// object core, which has no incremental path; for the SoA core it grows
  /// by at most one per in-sweep node per epoch.
  virtual uint64_t nodes_reprocessed() const { return 0; }

  /// Notification that the scenario's tree and rings were repaired in
  /// place (dynamic scenarios, after churn). Tree and multipath engines
  /// re-read the topology every epoch and need no reaction; adaptive
  /// engines re-derive their cached tree state and resync the region.
  virtual void OnTopologyChanged() {}

  /// Enables per-epoch capture of the base station's root aggregate state.
  ///
  /// DEPRECATED as a direct call: set EngineOptions::capture_root_state (or
  /// Experiment::Builder::CaptureRootState) instead, which MakeEngine
  /// applies at construction; this method remains as a thin shim with
  /// identical behavior and will eventually go away.
  ///
  /// Off by default: the tree-engine capture copies the root partial once
  /// per epoch, so only consumers pay. Two consumers exist: windowed
  /// aggregation (src/window/ re-merges the state across epochs) and the
  /// federation tier (fed/Coordinator merges the states of many gateway
  /// engines into global answers -- see DESIGN.md "Hierarchical
  /// federation"). Both ride the state the base station already holds, so
  /// neither adds radio bytes.
  virtual void EnableRootCapture() {}

  /// The captured root state of the last RunEpoch; all-null before the
  /// first captured epoch or when capture is disabled. Which sides are
  /// populated is a strategy property (RootStateSides): tree partial for
  /// tree strategies, fused synopsis for synopsis diffusion, both for
  /// Tributary-Delta. The pointers alias engine-owned scratch valid until
  /// the next RunEpoch; a root state excludes any base-station
  /// self-contribution, so cross-engine merging never double-counts.
  virtual RootState root_state() const { return {}; }

  /// Adaptation counters (zeros when !IsAdaptive(strategy())).
  virtual EngineStats stats() const { return {}; }

  /// Inbox-scratch reuse counters of the wrapped engine.
  virtual ScratchStats scratch_stats() const = 0;

  /// Tributary/delta region, or nullptr for non-adaptive strategies.
  virtual const RegionState* region() const { return nullptr; }
  virtual RegionState* mutable_region() { return nullptr; }

  /// Delta size (1 == base station only); 0 when there is no region.
  size_t delta_size() const {
    const RegionState* r = region();
    return r ? r->delta_size() : 0;
  }
};

namespace api_internal {

inline void AssignResult(EpochResult* r, double v) { r->value = v; }
inline void AssignResult(EpochResult* r, const FreqResult& f) {
  r->value = f.total;
  r->freq = f;
}
inline void AssignResult(EpochResult* r, const QuerySetResult& q) {
  r->query_values = q.values;
  r->value = q.values.empty() ? 0.0 : q.values[q.primary];
}

template <typename Outcome>
EpochResult ToEpochResult(uint32_t epoch, const Outcome& o) {
  EpochResult r;
  r.epoch = epoch;
  AssignResult(&r, o.result);
  r.true_contributing = o.true_contributing;
  r.reported_contributing = o.reported_contributing;
  return r;
}

template <Aggregate A>
class TreeEngine final : public Engine {
 public:
  TreeEngine(const Scenario* sc, std::shared_ptr<Network> network,
             const A* aggregate, Strategy strategy,
             const EngineOptions& options)
      : network_(std::move(network)),
        strategy_(strategy),
        inner_(&sc->tree, network_.get(), aggregate,
               typename TreeAggregator<A>::Options{
                   .extra_retransmissions =
                       options.tree_extra_retransmissions >= 0
                           ? options.tree_extra_retransmissions
                           : (strategy == Strategy::kTagRetx ? 2 : 0)}) {}

  EpochResult RunEpoch(uint32_t epoch) override {
    return ToEpochResult(epoch, inner_.RunEpoch(epoch));
  }
  Strategy strategy() const override { return strategy_; }
  Network& network() const override { return *network_; }
  void EnableRootCapture() override { inner_.EnableRootCapture(); }
  RootState root_state() const override {
    return RootState{inner_.root_partial(), nullptr};
  }
  ScratchStats scratch_stats() const override {
    return inner_.scratch_stats();
  }

 private:
  std::shared_ptr<Network> network_;
  Strategy strategy_;
  TreeAggregator<A> inner_;
};

template <Aggregate A>
class MultipathEngine final : public Engine {
 public:
  MultipathEngine(const Scenario* sc, std::shared_ptr<Network> network,
                  const A* aggregate, const EngineOptions& options)
      : network_(std::move(network)),
        inner_(&sc->rings, network_.get(), aggregate, options.contrib_seed) {}

  EpochResult RunEpoch(uint32_t epoch) override {
    return ToEpochResult(epoch, inner_.RunEpoch(epoch));
  }
  Strategy strategy() const override { return Strategy::kSynopsisDiffusion; }
  Network& network() const override { return *network_; }
  void EnableRootCapture() override { inner_.EnableRootCapture(); }
  RootState root_state() const override {
    return RootState{nullptr, inner_.root_synopsis()};
  }
  ScratchStats scratch_stats() const override {
    return inner_.scratch_stats();
  }

 private:
  std::shared_ptr<Network> network_;
  MultipathAggregator<A> inner_;
};

template <Aggregate A>
class TributaryDeltaEngine final : public Engine {
 public:
  TributaryDeltaEngine(const Scenario* sc, std::shared_ptr<Network> network,
                       const A* aggregate, Strategy strategy,
                       const EngineOptions& options)
      : network_(std::move(network)),
        strategy_(strategy),
        inner_(&sc->tree, &sc->rings, network_.get(), aggregate,
               MakePolicy(strategy),
               typename TributaryDeltaAggregator<A>::Options{
                   .adaptation = options.adaptation,
                   .tree_extra_retransmissions =
                       options.tree_extra_retransmissions >= 0
                           ? options.tree_extra_retransmissions
                           : 0,
                   .contrib_seed = options.contrib_seed,
                   .sensor_population = options.sensor_population}) {}

  EpochResult RunEpoch(uint32_t epoch) override {
    return ToEpochResult(epoch, inner_.RunEpoch(epoch));
  }
  Strategy strategy() const override { return strategy_; }
  Network& network() const override { return *network_; }
  void EnableRootCapture() override { inner_.EnableRootCapture(); }
  RootState root_state() const override {
    return RootState{inner_.root_partial(), inner_.root_synopsis()};
  }
  void OnTopologyChanged() override { inner_.OnTopologyChanged(); }
  EngineStats stats() const override {
    return EngineStats{.expansions = inner_.stats().expansions,
                       .shrinks = inner_.stats().shrinks,
                       .decisions = inner_.stats().decisions};
  }
  ScratchStats scratch_stats() const override {
    return inner_.scratch_stats();
  }
  const RegionState* region() const override { return &inner_.region(); }
  RegionState* mutable_region() override { return &inner_.region(); }

 private:
  static std::unique_ptr<AdaptationPolicy> MakePolicy(Strategy s) {
    if (s == Strategy::kTdCoarse) return std::make_unique<TdCoarsePolicy>();
    return std::make_unique<TdFinePolicy>();
  }

  std::shared_ptr<Network> network_;
  Strategy strategy_;
  TributaryDeltaAggregator<A> inner_;
};

// ---------------------------------------------------------------- SoA --
// The structure-of-arrays core (src/core/) behind the same type-erased
// surface. Each wrapper mirrors its object twin exactly, plus: core()
// reports kSoa, nodes_reprocessed() surfaces the epoch-delta cache, and
// OnTopologyChanged also drops the cached CSR/topological schedules.

template <Aggregate A>
class SoaTreeEngine final : public Engine {
 public:
  SoaTreeEngine(const Scenario* sc, std::shared_ptr<Network> network,
                const A* aggregate, Strategy strategy,
                const EngineOptions& options)
      : network_(std::move(network)),
        strategy_(strategy),
        inner_(&sc->tree, network_.get(), aggregate,
               typename SoaTreeAggregator<A>::Options{
                   .extra_retransmissions =
                       options.tree_extra_retransmissions >= 0
                           ? options.tree_extra_retransmissions
                           : (strategy == Strategy::kTagRetx ? 2 : 0)}) {}

  EpochResult RunEpoch(uint32_t epoch) override {
    return ToEpochResult(epoch, inner_.RunEpoch(epoch));
  }
  Strategy strategy() const override { return strategy_; }
  Network& network() const override { return *network_; }
  EngineCore core() const override { return EngineCore::kSoa; }
  uint64_t nodes_reprocessed() const override {
    return inner_.nodes_reprocessed();
  }
  void OnTopologyChanged() override { inner_.OnTopologyChanged(); }
  void EnableRootCapture() override { inner_.EnableRootCapture(); }
  RootState root_state() const override {
    return RootState{inner_.root_partial(), nullptr};
  }
  ScratchStats scratch_stats() const override {
    return inner_.scratch_stats();
  }

 private:
  std::shared_ptr<Network> network_;
  Strategy strategy_;
  SoaTreeAggregator<A> inner_;
};

template <Aggregate A>
class SoaMultipathEngine final : public Engine {
 public:
  SoaMultipathEngine(const Scenario* sc, std::shared_ptr<Network> network,
                     const A* aggregate, const EngineOptions& options)
      : network_(std::move(network)),
        inner_(&sc->rings, network_.get(), aggregate, options.contrib_seed) {}

  EpochResult RunEpoch(uint32_t epoch) override {
    return ToEpochResult(epoch, inner_.RunEpoch(epoch));
  }
  Strategy strategy() const override { return Strategy::kSynopsisDiffusion; }
  Network& network() const override { return *network_; }
  EngineCore core() const override { return EngineCore::kSoa; }
  uint64_t nodes_reprocessed() const override {
    return inner_.nodes_reprocessed();
  }
  void OnTopologyChanged() override { inner_.OnTopologyChanged(); }
  void EnableRootCapture() override { inner_.EnableRootCapture(); }
  RootState root_state() const override {
    return RootState{nullptr, inner_.root_synopsis()};
  }
  ScratchStats scratch_stats() const override {
    return inner_.scratch_stats();
  }

 private:
  std::shared_ptr<Network> network_;
  SoaMultipathAggregator<A> inner_;
};

template <Aggregate A>
class SoaTributaryDeltaEngine final : public Engine {
 public:
  SoaTributaryDeltaEngine(const Scenario* sc, std::shared_ptr<Network> network,
                          const A* aggregate, Strategy strategy,
                          const EngineOptions& options)
      : network_(std::move(network)),
        strategy_(strategy),
        inner_(&sc->tree, &sc->rings, network_.get(), aggregate,
               MakePolicy(strategy),
               typename SoaTributaryDeltaAggregator<A>::Options{
                   .adaptation = options.adaptation,
                   .tree_extra_retransmissions =
                       options.tree_extra_retransmissions >= 0
                           ? options.tree_extra_retransmissions
                           : 0,
                   .contrib_seed = options.contrib_seed,
                   .sensor_population = options.sensor_population}) {}

  EpochResult RunEpoch(uint32_t epoch) override {
    return ToEpochResult(epoch, inner_.RunEpoch(epoch));
  }
  Strategy strategy() const override { return strategy_; }
  Network& network() const override { return *network_; }
  EngineCore core() const override { return EngineCore::kSoa; }
  uint64_t nodes_reprocessed() const override {
    return inner_.nodes_reprocessed();
  }
  void EnableRootCapture() override { inner_.EnableRootCapture(); }
  RootState root_state() const override {
    return RootState{inner_.root_partial(), inner_.root_synopsis()};
  }
  void OnTopologyChanged() override { inner_.OnTopologyChanged(); }
  EngineStats stats() const override {
    return EngineStats{.expansions = inner_.stats().expansions,
                       .shrinks = inner_.stats().shrinks,
                       .decisions = inner_.stats().decisions};
  }
  ScratchStats scratch_stats() const override {
    return inner_.scratch_stats();
  }
  const RegionState* region() const override { return &inner_.region(); }
  RegionState* mutable_region() override { return &inner_.region(); }

 private:
  static std::unique_ptr<AdaptationPolicy> MakePolicy(Strategy s) {
    if (s == Strategy::kTdCoarse) return std::make_unique<TdCoarsePolicy>();
    return std::make_unique<TdFinePolicy>();
  }

  std::shared_ptr<Network> network_;
  Strategy strategy_;
  SoaTributaryDeltaAggregator<A> inner_;
};

}  // namespace api_internal

/// Builds a type-erased engine running `strategy` over `aggregate` on the
/// chosen engine core (default: the object core). The scenario and
/// aggregate must outlive the engine; the network is shared so several
/// engines can ride one radio environment (and its RNG sequence). When
/// options.capture_root_state is set, root capture is enabled here, so
/// callers never have to poke the engine afterwards.
template <Aggregate A>
std::unique_ptr<Engine> MakeEngine(Strategy strategy, const Scenario& scenario,
                                   std::shared_ptr<Network> network,
                                   const A* aggregate,
                                   EngineOptions options = {},
                                   EngineCore core = EngineCore::kObject) {
  TD_CHECK(network != nullptr);
  TD_CHECK(aggregate != nullptr);
  std::unique_ptr<Engine> engine;
  switch (strategy) {
    case Strategy::kTag:
    case Strategy::kTagRetx:
      if (core == EngineCore::kSoa) {
        engine = std::make_unique<api_internal::SoaTreeEngine<A>>(
            &scenario, std::move(network), aggregate, strategy, options);
      } else {
        engine = std::make_unique<api_internal::TreeEngine<A>>(
            &scenario, std::move(network), aggregate, strategy, options);
      }
      break;
    case Strategy::kSynopsisDiffusion:
      if (core == EngineCore::kSoa) {
        engine = std::make_unique<api_internal::SoaMultipathEngine<A>>(
            &scenario, std::move(network), aggregate, options);
      } else {
        engine = std::make_unique<api_internal::MultipathEngine<A>>(
            &scenario, std::move(network), aggregate, options);
      }
      break;
    case Strategy::kTributaryDelta:
    case Strategy::kTdCoarse:
      if (core == EngineCore::kSoa) {
        engine = std::make_unique<api_internal::SoaTributaryDeltaEngine<A>>(
            &scenario, std::move(network), aggregate, strategy, options);
      } else {
        engine = std::make_unique<api_internal::TributaryDeltaEngine<A>>(
            &scenario, std::move(network), aggregate, strategy, options);
      }
      break;
  }
  TD_CHECK(engine != nullptr);
  if (options.capture_root_state) engine->EnableRootCapture();
  return engine;
}

}  // namespace td

#endif  // TD_API_ENGINE_H_
