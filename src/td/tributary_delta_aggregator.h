// The Tributary-Delta aggregation engine (Sections 3-4).
//
// One epoch proceeds level-by-level (ring levels, highest first; thanks to
// the Section 4.1 constraint, tree children sit exactly one ring level below
// their parent, so a single schedule serves both modes):
//
//   * a T node merges its reading with child partials (Algorithm-1-style
//     finalization hook included) and unicasts the partial to its tree
//     parent -- which may be a T node (plain tree aggregation) or an M node
//     (the tributary feeding the delta, converted on receipt);
//   * an M node fuses its own synopsis, the synopses heard from downstream
//     M nodes, and the *converted* tree partials received from its T
//     children, then broadcasts to all upstream M neighbors;
//   * the base station combines exact tree partials that reached it
//     directly with the fused delta synopsis (EvaluateCombined), so at low
//     loss much of the answer is exact.
//
// Piggybacked alongside the payload (and charged to message size):
//   * contributing counts -- exact integers in tributaries, an FM Count
//     sketch in the delta (tree counts convert via AddValue just like the
//     Count aggregate);
//   * for the TD strategy, the max/min over frontier nodes' "subtree nodes
//     not contributing", fused duplicate-insensitively (max/min are
//     trivially so).
//
// Every `period` epochs (stretched by the oscillation damper) the base
// station runs the adaptation policy on this feedback.
#ifndef TD_TD_TRIBUTARY_DELTA_AGGREGATOR_H_
#define TD_TD_TRIBUTARY_DELTA_AGGREGATOR_H_

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "agg/aggregate.h"
#include "agg/epoch_outcome.h"
#include "net/network.h"
#include "obs/telemetry.h"
#include "sketch/fm_sketch.h"
#include "td/adaptation.h"
#include "td/region_state.h"
#include "topology/rings.h"
#include "topology/tree.h"
#include "util/check.h"
#include "util/node_set.h"

namespace td {

template <Aggregate A>
class TributaryDeltaAggregator {
 public:
  struct Options {
    AdaptationConfig adaptation;
    /// Extra tree retransmissions (Figure 9(b)).
    int tree_extra_retransmissions = 0;
    /// Seed for the piggybacked contributing-count sketch.
    uint64_t contrib_seed = 0x510c;
    /// Total sensor population the base station divides by to obtain the
    /// contributing fraction; 0 means "use the number of in-tree sensors".
    size_t sensor_population = 0;
  };

  struct Stats {
    size_t expansions = 0;
    size_t shrinks = 0;
    size_t decisions = 0;  // includes rounds that changed nothing
  };

  TributaryDeltaAggregator(const Tree* tree, const Rings* rings,
                           Network* network, const A* aggregate,
                           std::unique_ptr<AdaptationPolicy> policy,
                           Options options = {})
      : tree_(tree),
        rings_(rings),
        network_(network),
        aggregate_(aggregate),
        policy_(std::move(policy)),
        options_(options),
        region_(tree, rings),
        damper_(options.adaptation),
        contrib_memo_(FmSketch::kDefaultBitmaps, options.contrib_seed) {
    TD_CHECK(tree != nullptr);
    TD_CHECK(rings != nullptr);
    TD_CHECK(network != nullptr);
    TD_CHECK(aggregate != nullptr);
    TD_CHECK(policy_ != nullptr);
    subtree_size_ = tree->ComputeSubtreeSizes();
    population_ = options_.sensor_population != 0
                      ? options_.sensor_population
                      : tree->num_in_tree() - 1;  // sensors exclude the base
    TD_CHECK_GT(population_, 0u);
  }

  using Outcome = EpochOutcome<typename A::Result>;

  /// Runs one aggregation epoch, then (when the damper allows) one
  /// adaptation decision based on that epoch's feedback.
  Outcome RunEpoch(uint32_t epoch) {
    Outcome out = RunAggregation(epoch);
    if (damper_.ShouldAdapt(epoch)) {
      TD_PROFILE_SCOPE(obs::Phase::kAdapt);
      AdaptationConfig cfg = options_.adaptation;
      if (damper_.ShrinkSuppressed(epoch)) {
        cfg.shrink_margin = 2.0;  // contributing fraction can never exceed it
      }
      AdaptAction action = policy_->Adapt(last_feedback_, cfg, &region_);
      damper_.Record(epoch, action);
      ++stats_.decisions;
      if (action == AdaptAction::kExpand) ++stats_.expansions;
      if (action == AdaptAction::kShrink) ++stats_.shrinks;
      if (action != AdaptAction::kNone) {
        // The switch command is a small broadcast from the base station;
        // charge its energy (delivery of control traffic is assumed
        // reliable -- see DESIGN.md).
        network_->CountTransmission(rings_->base(), 8);
      }
    }
    return out;
  }

  /// Reacts to an in-place tree/rings repair (churn): re-derives the
  /// subtree sizes the frontier "missing" reports divide over, resyncs the
  /// region labelling to the surviving topology, re-bases the contributing
  /// threshold on the live population, and resets the oscillation damper
  /// and feedback medians -- observations from the pre-repair network
  /// should neither delay nor bias the first post-repair decision. This is
  /// what lets the delta shrink back after nodes rejoin instead of staying
  /// saturated at the size the outage forced.
  void OnTopologyChanged() {
    subtree_size_ = tree_->ComputeSubtreeSizes();
    region_.Resync();
    if (options_.sensor_population == 0) {
      size_t in_tree = tree_->num_in_tree();
      population_ = in_tree > 1 ? in_tree - 1 : 1;
    }
    damper_.Reset();
    pct_history_.clear();
    pct_raw_history_.clear();
    last_feedback_ = AdaptationFeedback{};
  }

  /// Keeps each epoch's root state (exact tributary partial + fused delta
  /// synopsis) for window consumers (window/); off by default.
  void EnableRootCapture() { capture_root_ = true; }

  /// The last RunEpoch's root state, or nullptr before the first captured
  /// epoch. The synopsis points into the epoch scratch; both are valid
  /// until the next RunEpoch.
  const typename A::TreePartial* root_partial() const {
    return root_partial_ ? &*root_partial_ : nullptr;
  }
  const typename A::Synopsis* root_synopsis() const { return root_synopsis_; }

  RegionState& region() { return region_; }
  const RegionState& region() const { return region_; }
  const Stats& stats() const { return stats_; }
  const ScratchStats& scratch_stats() const { return scratch_stats_; }
  const AdaptationFeedback& last_feedback() const { return last_feedback_; }
  OscillationDamper& damper() { return damper_; }

 private:
  /// Duplicate-insensitive max/min accumulator for frontier missing counts.
  struct MissingAgg {
    uint64_t max = 0;
    uint64_t min = 0;
    bool valid = false;

    void Absorb(const MissingAgg& o) {
      if (!o.valid) return;
      if (!valid) {
        *this = o;
      } else {
        max = std::max(max, o.max);
        min = std::min(min, o.min);
      }
    }
    void AbsorbValue(uint64_t v) { Absorb(MissingAgg{v, v, true}); }
  };

  /// All per-epoch inbox state, indexed by node id. Hoisted into a member
  /// (`scratch_`) and reset in place each epoch: the six size-n arrays --
  /// and their elements' heap buffers (sketch bitmaps, node-set words) --
  /// are allocated once and reused for every subsequent epoch, which is
  /// what makes batch sweeps over RunEpochs cheap.
  struct EpochState {
    std::vector<typename A::TreePartial> tree_inbox;
    std::vector<uint64_t> tree_count;
    std::vector<typename A::Synopsis> syn_inbox;
    std::vector<FmSketch> contrib_inbox;
    std::vector<NodeSet> inbox_set;
    std::vector<MissingAgg> missing_inbox;
    /// Frontier reports that reached the base (ground truth bookkeeping).
    std::map<NodeId, uint64_t> frontier_missing;
  };

  void PrepareScratch() {
    const size_t n = tree_->num_nodes();
    if (scratch_.tree_count.size() == n) {
      ++scratch_stats_.reuses;
    } else {
      ++scratch_stats_.builds;
      empty_tree_partial_.emplace(aggregate_->EmptyTreePartial());
      scratch_partial_.emplace(aggregate_->EmptyTreePartial());
      empty_synopsis_.emplace(aggregate_->EmptySynopsis());
      scratch_syn_.emplace(aggregate_->EmptySynopsis());
      empty_contrib_ = FmSketch(FmSketch::kDefaultBitmaps,
                                options_.contrib_seed);
      scratch_contrib_ = empty_contrib_;
      empty_set_ = NodeSet(n);
      scratch_covered_ = NodeSet(n);
    }
    scratch_.tree_inbox.assign(n, *empty_tree_partial_);
    scratch_.tree_count.assign(n, 0);
    scratch_.syn_inbox.assign(n, *empty_synopsis_);
    scratch_.contrib_inbox.assign(n, empty_contrib_);
    scratch_.inbox_set.assign(n, empty_set_);
    scratch_.missing_inbox.assign(n, MissingAgg{});
    scratch_.frontier_missing.clear();
  }

  Outcome RunAggregation(uint32_t epoch) {
    TD_PROFILE_SCOPE(obs::Phase::kSweep);
    const NodeId base = rings_->base();
    TD_DCHECK(region_.CheckInvariants());

    PrepareScratch();
    EpochState& st = scratch_;

    for (int level = rings_->max_level(); level >= 1; --level) {
      for (NodeId v : rings_->NodesAtLevel(level)) {
        if (!tree_->InTree(v)) continue;
        if (region_.IsT(v)) {
          RunTreeNode(v, epoch, &st);
        } else {
          RunMultipathNode(v, epoch, &st);
        }
      }
    }

    // Base station: exact tree inputs + fused delta synopsis.
    typename A::TreePartial base_partial = aggregate_->EmptyTreePartial();
    aggregate_->MergeTree(&base_partial, st.tree_inbox[base]);
    aggregate_->FinalizeTreePartial(&base_partial, base);

    Outcome out;
    out.result = aggregate_->EvaluateCombined(base_partial, st.syn_inbox[base]);
    out.contributors = st.inbox_set[base];
    out.true_contributing = out.contributors.Count();
    out.reported_contributing = static_cast<double>(st.tree_count[base]) +
                                st.contrib_inbox[base].Estimate();
    if (capture_root_) {
      // Base-station bookkeeping for windowed aggregation (window/): keeps
      // the exact tributary partial and a view of the fused delta synopsis;
      // zero radio bytes, deliveries untouched.
      root_partial_ = std::move(base_partial);
      root_synopsis_ = &st.syn_inbox[base];
    }

    last_feedback_ = AdaptationFeedback{};
    // The user's threshold says AT LEAST 90% of nodes should be accounted
    // for, so the base station holds the delta's FM-estimated share of the
    // count (relative sd ~ 0.78/sqrt(bitmaps) ~ 12%) to a one-sigma lower
    // confidence bound; the tributaries' exact counts need no discount.
    // This is why, on lossy networks, the delta keeps growing until
    // synopsis diffusion runs over most of the network (exactly what
    // Section 7.3 reports for LabData), while at low loss the exact tree
    // counts satisfy the threshold early and tributaries stay large.
    double fm_discount =
        1.0 - 0.78 / std::sqrt(static_cast<double>(FmSketch::kDefaultBitmaps));
    double lcb = static_cast<double>(st.tree_count[base]) +
                 st.contrib_inbox[base].Estimate() * fm_discount;
    // A median over the last three epochs tames the residual noise (the
    // "simple heuristics" of Section 7.3) without hiding real changes.
    auto median3 = [](std::vector<double>* hist, double x) {
      hist->push_back(x);
      if (hist->size() > 3) hist->erase(hist->begin());
      std::vector<double> window = *hist;
      std::sort(window.begin(), window.end());
      return window[window.size() / 2];
    };
    last_feedback_.pct_contributing =
        median3(&pct_history_, lcb / static_cast<double>(population_));
    last_feedback_.pct_contributing_raw = median3(
        &pct_raw_history_,
        out.reported_contributing / static_cast<double>(population_));
    last_feedback_.max_missing = st.missing_inbox[base].max;
    last_feedback_.min_missing = st.missing_inbox[base].min;
    last_feedback_.missing_valid = st.missing_inbox[base].valid;
    if (st.missing_inbox[base].valid) {
      // In the real system the base broadcasts max/min and each frontier
      // node self-compares; the simulator keeps the per-node values, which
      // is observationally equivalent.
      last_feedback_.frontier_missing = st.frontier_missing;
    }
    return out;
  }

  void RunTreeNode(NodeId v, uint32_t epoch, EpochState* st) {
    typename A::TreePartial& partial = *scratch_partial_;
    td::MakeTreePartialInto(*aggregate_, &partial, v, epoch);
    aggregate_->MergeTree(&partial, st->tree_inbox[v]);
    aggregate_->FinalizeTreePartial(&partial, v);
    uint64_t contributing = 1 + st->tree_count[v];
    scratch_covered_ = st->inbox_set[v];
    scratch_covered_.Set(v);

    NodeId p = tree_->parent(v);
    TD_DCHECK(p != kNoParent);
    size_t bytes = aggregate_->TreeBytes(partial) + kMessageHeaderBytes;
    bool delivered = network_->DeliverWithRetries(
        v, p, epoch, options_.tree_extra_retransmissions, bytes);
    if (!delivered) return;

    if (region_.IsT(p) || p == rings_->base()) {
      // Plain tree aggregation -- and tributaries that reach the base
      // station directly stay exact (EvaluateCombined at the base).
      aggregate_->MergeTree(&st->tree_inbox[p], partial);
      st->tree_count[p] += contributing;
      st->inbox_set[p].Union(scratch_covered_);
    } else {
      // Tributary feeding the delta: convert to a synopsis on receipt
      // (Section 5), fused straight into the parent's inbox (no converted
      // temporary); the contributing count converts the same way the Count
      // aggregate does, replayed from the memo when (v, contributing)
      // repeats across epochs.
      td::FuseConverted(*aggregate_, &st->syn_inbox[p], partial);
      contrib_memo_.AddValue(&st->contrib_inbox[p], v, contributing);
      st->inbox_set[p].Union(scratch_covered_);
      // The M parent also tallies the exact count for its missing-nodes
      // report (strategy TD, Section 4.2).
      st->tree_count[p] += contributing;
    }
  }

  void RunMultipathNode(NodeId v, uint32_t epoch, EpochState* st) {
    typename A::Synopsis& syn = *scratch_syn_;
    td::MakeSynopsisInto(*aggregate_, &syn, v, epoch);
    aggregate_->Fuse(&syn, st->syn_inbox[v]);

    // Fixed-geometry copy + own-id insertion, bit-identical to building a
    // fresh sketch and merging the inbox (OR commutes).
    FmSketch& contrib = scratch_contrib_;
    contrib.AssignFrom(st->contrib_inbox[v]);
    contrib.AddKey(v);

    NodeSet& covered = scratch_covered_;
    covered = st->inbox_set[v];
    covered.Set(v);

    MissingAgg missing = st->missing_inbox[v];
    if (region_.IsFrontierM(v)) {
      // "The number of nodes in its subtree that did not contribute". The
      // subtree is unique (path correctness), so no double counting.
      uint64_t descendants = subtree_size_[v] - 1;
      uint64_t received = st->tree_count[v];
      uint64_t own_missing =
          descendants > received ? descendants - received : 0;
      missing.AbsorbValue(own_missing);
      st->frontier_missing[v] = own_missing;
    }

    // One physical broadcast to all upstream M neighbors; T neighbors
    // ignore multi-path traffic (no M edge ever enters a T vertex).
    size_t bytes = aggregate_->SynopsisBytes(syn) + contrib.EncodedBytes() +
                   2 * sizeof(uint64_t) /* max/min missing (uint64_t each) */ +
                   kMessageHeaderBytes;
    network_->CountTransmission(v, bytes);
    bool has_m_upstream = false;
    for (NodeId w :
         rings_->UpstreamNeighbors(network_->connectivity(), v)) {
      if (!region_.IsM(w)) continue;
      has_m_upstream = true;
      if (network_->Deliver(v, w, epoch)) {
        aggregate_->Fuse(&st->syn_inbox[w], syn);
        st->contrib_inbox[w].Merge(contrib);
        st->inbox_set[w].Union(covered);
        st->missing_inbox[w].Absorb(missing);
      }
    }
    // The crown invariant guarantees the tree parent is an upstream M
    // neighbor, so a delta node always has someone to talk to.
    TD_DCHECK(has_m_upstream);
    (void)has_m_upstream;
  }

  const Tree* tree_;
  const Rings* rings_;
  Network* network_;
  const A* aggregate_;
  std::unique_ptr<AdaptationPolicy> policy_;
  Options options_;
  RegionState region_;
  OscillationDamper damper_;
  Stats stats_;
  EpochState scratch_;
  ScratchStats scratch_stats_;
  std::optional<typename A::TreePartial> empty_tree_partial_;
  std::optional<typename A::Synopsis> empty_synopsis_;
  FmSketch empty_contrib_;
  NodeSet empty_set_;
  // Per-node temporaries recycled across the level sweep, plus the memo
  // for tributary contributing-count conversions (AddValue is pure, so a
  // repeated (node, count) pair replays its cached bank).
  std::optional<typename A::TreePartial> scratch_partial_;
  std::optional<typename A::Synopsis> scratch_syn_;
  FmSketch scratch_contrib_;
  NodeSet scratch_covered_;
  FmValueMemo contrib_memo_;
  std::vector<size_t> subtree_size_;
  size_t population_ = 0;
  AdaptationFeedback last_feedback_;
  std::vector<double> pct_history_;      // last <=3 LCB contributing fracs
  std::vector<double> pct_raw_history_;  // last <=3 raw contributing fracs
  bool capture_root_ = false;
  std::optional<typename A::TreePartial> root_partial_;
  const typename A::Synopsis* root_synopsis_ = nullptr;
};

}  // namespace td

#endif  // TD_TD_TRIBUTARY_DELTA_AGGREGATOR_H_
