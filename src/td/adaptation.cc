#include "td/adaptation.h"

#include <algorithm>

#include "util/check.h"

namespace td {

AdaptAction TdCoarsePolicy::Adapt(const AdaptationFeedback& feedback,
                                  const AdaptationConfig& config,
                                  RegionState* region) {
  if (feedback.pct_contributing < config.threshold) {
    return region->ExpandAll() > 0 ? AdaptAction::kExpand : AdaptAction::kNone;
  }
  if (feedback.pct_contributing_raw >
      config.threshold + config.shrink_margin) {
    return region->ShrinkAll() > 0 ? AdaptAction::kShrink : AdaptAction::kNone;
  }
  return AdaptAction::kNone;
}

AdaptAction TdFinePolicy::Adapt(const AdaptationFeedback& feedback,
                                const AdaptationConfig& config,
                                RegionState* region) {
  if (feedback.pct_contributing < config.threshold - config.panic_gap) {
    // Way below target: the problem is network-wide; go coarse this round.
    size_t switched = region->ExpandAll();
    if (switched > 0) return AdaptAction::kExpand;
  }
  if (!feedback.missing_valid || feedback.frontier_missing.empty()) {
    // No frontier reports reached the base station; fall back to coarse
    // expansion when starving, otherwise wait.
    if (feedback.pct_contributing < config.threshold) {
      return region->ExpandAll() > 0 ? AdaptAction::kExpand
                                     : AdaptAction::kNone;
    }
    return AdaptAction::kNone;
  }

  if (feedback.pct_contributing < config.threshold) {
    // Expand under the frontier subtrees with the greatest robustness
    // problems: every frontier node whose missing count reaches
    // fine_expand_fraction of the aggregated max switches all its (T)
    // children to M (the paper's "max/2" adaptivity heuristic).
    double bar = config.fine_expand_fraction *
                 static_cast<double>(feedback.max_missing);
    size_t switched = 0;
    for (const auto& [v, missing] : feedback.frontier_missing) {
      if (static_cast<double>(missing) < bar || missing == 0) continue;
      // Children of a frontier M vertex are switchable T vertices
      // (Observation 1); copy the list because switching mutates no tree
      // structure but we stay defensive about iteration order.
      std::vector<NodeId> kids = region->tree().children(v);
      for (NodeId c : kids) {
        if (region->IsSwitchableT(c)) {
          region->SwitchToM(c);
          ++switched;
        }
      }
    }
    return switched > 0 ? AdaptAction::kExpand : AdaptAction::kNone;
  }

  if (feedback.pct_contributing_raw >
      config.threshold + config.shrink_margin) {
    // Shrink the healthiest frontier subtrees: frontier nodes whose missing
    // count equals the aggregated min switch themselves back to T.
    size_t switched = 0;
    for (const auto& [v, missing] : feedback.frontier_missing) {
      if (missing != feedback.min_missing) continue;
      if (region->IsSwitchableM(v)) {
        region->SwitchToT(v);
        ++switched;
      }
    }
    return switched > 0 ? AdaptAction::kShrink : AdaptAction::kNone;
  }
  return AdaptAction::kNone;
}

OscillationDamper::OscillationDamper(const AdaptationConfig& config)
    : config_(config), current_period_(config.period) {
  TD_CHECK_GT(config.period, 0u);
  TD_CHECK_GE(config.max_period_scale, 1u);
}

bool OscillationDamper::ShouldAdapt(uint32_t epoch) const {
  if (!has_last_epoch_) return epoch + 1 >= config_.period;
  return epoch - last_epoch_ >= current_period_;
}

bool OscillationDamper::ShrinkSuppressed(uint32_t epoch) const {
  return config_.damping && epoch < shrink_suppressed_until_;
}

void OscillationDamper::Reset() {
  current_period_ = config_.period;
  has_last_epoch_ = false;
  last_action_ = AdaptAction::kNone;
  shrink_suppressed_until_ = 0;
}

void OscillationDamper::Record(uint32_t epoch, AdaptAction action) {
  last_epoch_ = epoch;
  has_last_epoch_ = true;
  if (!config_.damping) return;
  bool alternation = (action == AdaptAction::kExpand &&
                      last_action_ == AdaptAction::kShrink) ||
                     (action == AdaptAction::kShrink &&
                      last_action_ == AdaptAction::kExpand);
  if (alternation) {
    current_period_ = std::min(current_period_ * 2,
                               config_.period * config_.max_period_scale);
    // A shrink that immediately had to be undone (or vice versa) means the
    // delta sits at its operating point: hold it there for a while (but not
    // so long that a genuine improvement in network conditions is missed).
    shrink_suppressed_until_ =
        epoch + config_.period * (config_.max_period_scale / 2);
  } else if (action != AdaptAction::kNone) {
    current_period_ = config_.period;
  }
  last_action_ = action;
}

}  // namespace td
