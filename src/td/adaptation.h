// Adaptation strategies (Section 4.2) and oscillation damping.
//
// Users give a threshold on the minimum % of nodes that should contribute
// to an answer. The base station compares the (approximate) piggybacked
// contributing count against it and either expands the delta (more
// robustness) or shrinks it (less approximation error):
//
//  * TD-Coarse -- expand/shrink by a whole "level": switch every switchable
//    node at once. Fast convergence, no spatial selectivity.
//  * TD        -- fine-grained: each frontier M node reports how many nodes
//    in its subtree did not contribute; the delta expands only under the
//    frontier node(s) with the *maximum* missing count (the subtrees with
//    the greatest robustness problems) and shrinks only at frontier node(s)
//    with the *minimum* missing count.
//
// A repeated expand/shrink alternation makes the damper stretch the
// adaptation period geometrically (Section 4.2's "gradually reduces the
// frequency of adjustments").
#ifndef TD_TD_ADAPTATION_H_
#define TD_TD_ADAPTATION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "td/region_state.h"

namespace td {

/// Base-station-side knobs.
struct AdaptationConfig {
  /// Minimum fraction of sensors that should contribute (paper uses 0.9).
  double threshold = 0.9;

  /// Shrink only when the contributing fraction exceeds threshold + margin
  /// ("well above the threshold"). The margin also absorbs the FM noise of
  /// the piggybacked count so the delta settles at the top of the band.
  double shrink_margin = 0.08;

  /// Epochs between adaptation decisions (paper adapts every 10 epochs).
  uint32_t period = 10;

  /// TD (fine) expansion heuristic: expand under every frontier node whose
  /// missing count is at least this fraction of the aggregated max.
  /// Section 4.2 names "using max/2 instead of max" as a heuristic to
  /// improve adaptivity; smaller fractions converge faster under
  /// network-wide failures while 1.0 is the strict max-only rule.
  double fine_expand_fraction = 0.34;

  /// TD (fine) panic heuristic: when the contributing estimate falls this
  /// far below the threshold, the failure is network-wide, not local --
  /// expand every switchable node at once like TD-Coarse does (Section 7.2
  /// observes both strategies "respond similarly" to Global failures).
  double panic_gap = 0.25;

  /// Enable oscillation damping.
  bool damping = true;

  /// Damping never stretches the period beyond period * max_period_scale.
  uint32_t max_period_scale = 8;
};

/// What the base station learned from the last aggregation epoch.
struct AdaptationFeedback {
  /// Conservative (lower-confidence-bound) estimate of the fraction of
  /// sensors contributing: exact tree counts plus a one-sigma-discounted FM
  /// estimate for the delta region. Drives *expansion* decisions -- the
  /// user asked for AT LEAST threshold coverage, so uncertainty counts
  /// against the current region.
  double pct_contributing = 0.0;

  /// Undiscounted (point) estimate; drives *shrink* decisions, which
  /// should fire only when the region is comfortably over-provisioned.
  double pct_contributing_raw = 0.0;

  /// Per-frontier-node "nodes in my subtree that did not contribute",
  /// restricted to reports that actually reached the base station.
  std::map<NodeId, uint64_t> frontier_missing;

  /// Max/min over frontier_missing as aggregated in-network (the max/min
  /// fields of Section 4.2). Valid only if missing_valid.
  uint64_t max_missing = 0;
  uint64_t min_missing = 0;
  bool missing_valid = false;
};

enum class AdaptAction { kNone, kExpand, kShrink };

class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;

  /// Applies one adaptation decision to `region`.
  virtual AdaptAction Adapt(const AdaptationFeedback& feedback,
                            const AdaptationConfig& config,
                            RegionState* region) = 0;

  virtual const char* name() const = 0;
};

/// Strategy TD-Coarse.
class TdCoarsePolicy : public AdaptationPolicy {
 public:
  AdaptAction Adapt(const AdaptationFeedback& feedback,
                    const AdaptationConfig& config,
                    RegionState* region) override;
  const char* name() const override { return "TD-Coarse"; }
};

/// Strategy TD (fine-grained).
class TdFinePolicy : public AdaptationPolicy {
 public:
  AdaptAction Adapt(const AdaptationFeedback& feedback,
                    const AdaptationConfig& config,
                    RegionState* region) override;
  const char* name() const override { return "TD"; }
};

/// Static policy: never adapts. With an all-T initial region this gives the
/// pure TAG baseline over the TD engine; after RegionState::ExpandAll to
/// saturation it gives pure synopsis diffusion.
class StaticPolicy : public AdaptationPolicy {
 public:
  AdaptAction Adapt(const AdaptationFeedback&, const AdaptationConfig&,
                    RegionState*) override {
    return AdaptAction::kNone;
  }
  const char* name() const override { return "Static"; }
};

/// Oscillation damper (Section 4.2's last paragraph, plus the "simple
/// heuristics to stop the oscillation" Section 7.3 alludes to): repeated
/// expand/shrink alternation stretches the adaptation period geometrically
/// AND suppresses the risky direction -- shrinking -- for a window, so the
/// delta settles at the robust end of the band instead of thrashing.
class OscillationDamper {
 public:
  explicit OscillationDamper(const AdaptationConfig& config);

  /// True when enough epochs have elapsed since the last decision.
  bool ShouldAdapt(uint32_t epoch) const;

  /// True while shrinking is suppressed after a detected oscillation.
  bool ShrinkSuppressed(uint32_t epoch) const;

  /// Records a decision made at `epoch` and updates the period: an
  /// expand/shrink alternation doubles it (capped) and opens a shrink-
  /// suppression window; a repeated action or a no-op resets the period.
  void Record(uint32_t epoch, AdaptAction action);

  /// Back to the configured period with no oscillation memory. Called when
  /// the network is repaired after churn: the topology the oscillation was
  /// observed on no longer exists, and the base station should be free to
  /// re-adapt immediately rather than sit out a stretched period.
  void Reset();

  uint32_t current_period() const { return current_period_; }

 private:
  AdaptationConfig config_;
  uint32_t current_period_;
  uint32_t last_epoch_ = 0;
  bool has_last_epoch_ = false;
  AdaptAction last_action_ = AdaptAction::kNone;
  uint32_t shrink_suppressed_until_ = 0;
};

}  // namespace td

#endif  // TD_TD_ADAPTATION_H_
