#include "td/region_state.h"

#include "util/check.h"

namespace td {

RegionState::RegionState(const Tree* tree, const Rings* rings)
    : tree_(tree), rings_(rings) {
  TD_CHECK(tree != nullptr);
  TD_CHECK(rings != nullptr);
  TD_CHECK_EQ(tree->num_nodes(), rings->num_nodes());
  TD_CHECK_EQ(tree->root(), rings->base());

  // Section 4.1: all tree links must be ring links going one level up, so
  // switching a node between modes never requires re-synchronizing epochs.
  for (NodeId v = 0; v < tree->num_nodes(); ++v) {
    NodeId p = tree->parent(v);
    if (p == kNoParent) continue;
    TD_CHECK_EQ(rings->level(v), rings->level(p) + 1);
  }

  mode_.assign(tree->num_nodes(), Mode::kTree);
  mode_[tree->root()] = Mode::kMultipath;
  delta_size_ = 1;
  num_active_ = tree->num_in_tree();
}

Mode RegionState::mode(NodeId id) const {
  TD_CHECK_LT(id, mode_.size());
  return mode_[id];
}

bool RegionState::IsSwitchableT(NodeId id) const {
  if (!tree_->InTree(id) || !IsT(id)) return false;
  NodeId p = tree_->parent(id);
  return p == kNoParent || IsM(p);
}

bool RegionState::IsSwitchableM(NodeId id) const {
  if (id == tree_->root()) return false;
  return IsFrontierM(id);
}

bool RegionState::IsFrontierM(NodeId id) const {
  if (!tree_->InTree(id) || !IsM(id)) return false;
  for (NodeId c : tree_->children(id)) {
    if (IsM(c)) return false;
  }
  return true;
}

std::vector<NodeId> RegionState::SwitchableTs() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < mode_.size(); ++v) {
    if (IsSwitchableT(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> RegionState::SwitchableMs() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < mode_.size(); ++v) {
    if (IsSwitchableM(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> RegionState::FrontierMs() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < mode_.size(); ++v) {
    if (IsFrontierM(v)) out.push_back(v);
  }
  return out;
}

void RegionState::SwitchToM(NodeId id) {
  TD_CHECK(IsSwitchableT(id));
  mode_[id] = Mode::kMultipath;
  ++delta_size_;
  TD_DCHECK(CheckInvariants());
}

void RegionState::SwitchToT(NodeId id) {
  TD_CHECK(IsSwitchableM(id));
  mode_[id] = Mode::kTree;
  --delta_size_;
  TD_DCHECK(CheckInvariants());
}

size_t RegionState::ExpandAll() {
  std::vector<NodeId> ts = SwitchableTs();
  for (NodeId v : ts) {
    mode_[v] = Mode::kMultipath;
  }
  delta_size_ += ts.size();
  TD_DCHECK(CheckInvariants());
  return ts.size();
}

size_t RegionState::ShrinkAll() {
  std::vector<NodeId> ms = SwitchableMs();
  for (NodeId v : ms) {
    mode_[v] = Mode::kTree;
  }
  delta_size_ -= ms.size();
  TD_DCHECK(CheckInvariants());
  return ms.size();
}

void RegionState::Resync() {
  const NodeId root = tree_->root();
  // The repaired tree must still satisfy the synchronization constraint;
  // anything else means the repair path is broken, not the region.
  for (NodeId v = 0; v < mode_.size(); ++v) {
    if (v == root || !tree_->InTree(v)) continue;
    NodeId p = tree_->parent(v);
    TD_CHECK(p != kNoParent);
    TD_CHECK_EQ(rings_->level(v), rings_->level(p) + 1);
  }

  mode_[root] = Mode::kMultipath;
  for (NodeId v = 0; v < mode_.size(); ++v) {
    if (v != root && !tree_->InTree(v)) mode_[v] = Mode::kTree;
  }
  // Crown fix, parents first: ring levels ascend exactly parent-to-child
  // for in-tree nodes, so one sweep demotes every M vertex whose (possibly
  // new) parent is T, and the demotions cascade to its children in turn.
  for (int level = 1; level <= rings_->max_level(); ++level) {
    for (NodeId v : rings_->NodesAtLevel(level)) {
      if (!tree_->InTree(v)) continue;
      if (IsM(v) && !IsM(tree_->parent(v))) mode_[v] = Mode::kTree;
    }
  }

  delta_size_ = 0;
  for (NodeId v = 0; v < mode_.size(); ++v) {
    if (tree_->InTree(v) && IsM(v)) ++delta_size_;
  }
  num_active_ = tree_->num_in_tree();
  TD_DCHECK(CheckInvariants());
}

bool RegionState::CheckInvariants() const {
  if (!IsM(tree_->root())) return false;
  size_t m_count = 0;
  for (NodeId v = 0; v < mode_.size(); ++v) {
    if (!tree_->InTree(v)) continue;
    if (IsM(v)) ++m_count;
    if (v == tree_->root()) continue;
    // Crown invariant: an M vertex's parent is M, so multi-path partial
    // results always have an M receiver one ring closer to the base
    // (Property 1, Edge Correctness, holds by construction).
    if (IsM(v) && !IsM(tree_->parent(v))) return false;
  }
  return m_count == delta_size_;
}

}  // namespace td
