// The tributary/delta partition of the network (Section 3).
//
// Every vertex is labelled T (tree / tributary) or M (multi-path / delta).
// The Edge Correctness property (an M edge never enters a T vertex) is
// maintained structurally through the *crown invariant*: the M vertices are
// closed under tree-parent -- if v is M then parent(v) is M -- so the delta
// is a connected region containing the base station, fed by tributary
// subtrees, exactly the shape Figure 1 depicts. Under this invariant:
//
//  * an M vertex is *switchable* (may become T) iff all its tree children
//    are T vertices (its incoming edges are all T edges), and it is not the
//    base station;
//  * a T vertex is *switchable* (may become M) iff its tree parent is an M
//    vertex;
//  * Observation 1 holds: all children of a switchable M vertex are
//    switchable T vertices;
//  * Lemma 1 holds: while T (resp. non-base M) vertices exist, at least one
//    of them is switchable -- so the delta can always expand or shrink.
//
// The tree must satisfy the Section 4.1 synchronization constraint (each
// tree parent is a ring-level-(i-1) neighbor), which RegionState checks at
// construction; this is what lets a node switch modes without changing its
// sending epoch.
#ifndef TD_TD_REGION_STATE_H_
#define TD_TD_REGION_STATE_H_

#include <cstdint>
#include <vector>

#include "topology/rings.h"
#include "topology/tree.h"

namespace td {

enum class Mode : uint8_t { kTree, kMultipath };

class RegionState {
 public:
  /// Initial labelling: base station M, every other in-tree node T (a pure
  /// tree network whose delta is just the base station). Checks the
  /// tree-links-subset-of-ring-links constraint.
  RegionState(const Tree* tree, const Rings* rings);

  Mode mode(NodeId id) const;
  bool IsM(NodeId id) const { return mode(id) == Mode::kMultipath; }
  bool IsT(NodeId id) const { return mode(id) == Mode::kTree; }

  /// T vertex whose parent is M (or which has no parent).
  bool IsSwitchableT(NodeId id) const;

  /// Non-base M vertex all of whose tree children are T.
  bool IsSwitchableM(NodeId id) const;

  /// M vertices with all-T children *including* the base station: the
  /// boundary nodes whose subtree "missing" counts drive the TD strategy.
  bool IsFrontierM(NodeId id) const;

  std::vector<NodeId> SwitchableTs() const;
  std::vector<NodeId> SwitchableMs() const;
  std::vector<NodeId> FrontierMs() const;

  /// Switches a switchable T vertex to M (checks the precondition).
  void SwitchToM(NodeId id);

  /// Switches a switchable M vertex to T (checks the precondition).
  void SwitchToT(NodeId id);

  /// TD-Coarse expansion: every switchable T becomes M ("widens the delta
  /// by one level"). Returns the number of switched nodes.
  size_t ExpandAll();

  /// TD-Coarse shrink: every switchable M becomes T. Returns count.
  size_t ShrinkAll();

  /// Re-synchronizes the labelling after the tree and rings were repaired
  /// in place (churn). Surviving nodes keep their mode wherever the crown
  /// invariant allows; nodes that left the tree revert to T, and any M
  /// vertex orphaned under a T parent is demoted top-down so the delta
  /// stays one connected crown. Re-checks the Section 4.1 constraint
  /// against the repaired topology.
  void Resync();

  /// Number of M vertices (the delta region size), base included.
  size_t delta_size() const { return delta_size_; }

  /// Number of in-tree vertices.
  size_t num_active() const { return num_active_; }

  /// Verifies the crown invariant and base labelling; used by tests and
  /// TD_DCHECKs.
  bool CheckInvariants() const;

  const Tree& tree() const { return *tree_; }
  const Rings& rings() const { return *rings_; }

 private:
  const Tree* tree_;
  const Rings* rings_;
  std::vector<Mode> mode_;
  size_t delta_size_ = 0;
  size_t num_active_ = 0;
};

}  // namespace td

#endif  // TD_TD_REGION_STATE_H_
